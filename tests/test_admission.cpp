// Control-plane admission control (src/ctrl/admission.hpp): per-tenant
// token buckets, the bounded two-class establish queue with explicit
// Busy{retry_after} shedding, the half-open control-session reaper, the
// client-side shed backoff, and the AC-1 conservation audit -- positive
// and negative.  The flood soak at the bottom drives the whole pipeline
// with the FaultInjector's establishment-flood + slow-client schedule and
// pins determinism: same seed, same decisions, same trace hash, including
// under the pod-sharded engine.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/audit_registry.hpp"
#include "core/fabric.hpp"
#include "core/fault_injector.hpp"
#include "core/mic_client.hpp"
#include "ctrl/admission.hpp"
#include "net/trace.hpp"
#include "sim/simulator.hpp"

namespace mic {
namespace {

using core::Fabric;
using core::FabricOptions;
using core::FaultInjector;
using core::FaultInjectorOptions;
using core::MicChannel;
using core::MicChannelOptions;
using core::MicServer;
using ctrl::AdmissionConfig;
using ctrl::AdmissionController;
using ctrl::AdmitPriority;

net::Ipv4 tenant_a() { return net::Ipv4(10, 0, 0, 2); }
net::Ipv4 tenant_b() { return net::Ipv4(10, 0, 0, 3); }

// --- token buckets -------------------------------------------------------------

TEST(Admission, TokenBucketShedsWhenDrainedAndRefillsWithTime) {
  sim::Simulator sim;
  AdmissionConfig config;
  config.tenant_rate = 1000.0;  // 1 token per millisecond
  config.tenant_burst = 3.0;
  config.queue_capacity = 0;  // admit-or-shed
  AdmissionController ac(sim, config);

  // The bucket is primed full on first sighting: exactly burst admissions.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(ac.offer_sync(tenant_a()).admitted) << i;
  }
  const AdmissionController::Ticket shed = ac.offer_sync(tenant_a());
  EXPECT_FALSE(shed.admitted);
  EXPECT_GE(shed.retry_after, config.retry_after_floor);

  // Tenants are isolated: B's budget is untouched by A's drain.
  EXPECT_TRUE(ac.offer_sync(tenant_b()).admitted);

  // Advance the clock one token's worth: A earns exactly one more.
  sim.run_until(sim.now() + sim::milliseconds(1));
  EXPECT_TRUE(ac.offer_sync(tenant_a()).admitted);
  EXPECT_FALSE(ac.offer_sync(tenant_a()).admitted);

  EXPECT_EQ(ac.stats().offered, 7u);
  EXPECT_EQ(ac.stats().admitted, 5u);
  EXPECT_EQ(ac.stats().shed, 2u);
}

TEST(Admission, DisabledPassesEverythingButStillAccounts) {
  sim::Simulator sim;
  AdmissionConfig config;
  config.enabled = false;
  config.tenant_burst = 1.0;
  config.tenant_rate = 1.0;
  AdmissionController ac(sim, config);

  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(ac.offer_sync(tenant_a()).admitted);
  }
  EXPECT_EQ(ac.stats().offered, 50u);
  EXPECT_EQ(ac.stats().admitted, 50u);
  EXPECT_EQ(ac.stats().shed, 0u);
}

// --- bounded queue, priority classes --------------------------------------------

TEST(Admission, RepairsOutrankQueuedFreshRequests) {
  sim::Simulator sim;
  AdmissionConfig config;
  config.max_in_service = 1;
  AdmissionController ac(sim, config);

  std::vector<std::string> order;
  auto run = [&order](const char* name) {
    return [&order, name] { order.emplace_back(name); };
  };
  auto no_shed = [](sim::SimTime) { FAIL() << "unexpected shed"; };

  const std::uint64_t epoch = ac.epoch();
  ac.offer(tenant_a(), AdmitPriority::kFresh, run("first"), no_shed);
  ASSERT_EQ(order, std::vector<std::string>({"first"}));  // fast path

  // The service slot is held: these queue in arrival order...
  ac.offer(tenant_a(), AdmitPriority::kFresh, run("fresh-1"), no_shed);
  ac.offer(tenant_b(), AdmitPriority::kFresh, run("fresh-2"), no_shed);
  // ...and the late repair still drains before both of them.
  ac.offer(tenant_b(), AdmitPriority::kRepair, run("repair"), no_shed);
  EXPECT_EQ(ac.queued_count(), 3u);

  ac.finish(tenant_a(), epoch);  // slot frees: repair first
  ac.finish(tenant_b(), epoch);
  ac.finish(tenant_a(), epoch);
  ac.finish(tenant_b(), epoch);
  EXPECT_EQ(order, std::vector<std::string>(
                       {"first", "repair", "fresh-1", "fresh-2"}));
  EXPECT_EQ(ac.queued_count(), 0u);
  EXPECT_EQ(ac.stats().admitted, 4u);
}

TEST(Admission, FullQueueShedsAndRepairEvictsYoungestFresh) {
  sim::Simulator sim;
  AdmissionConfig config;
  config.max_in_service = 1;
  config.queue_capacity = 2;
  AdmissionController ac(sim, config);

  auto nop = [] {};
  auto no_shed = [](sim::SimTime) { FAIL() << "unexpected shed"; };
  ac.offer(tenant_a(), AdmitPriority::kFresh, nop, no_shed);  // in service
  ac.offer(tenant_a(), AdmitPriority::kFresh, nop, no_shed);  // queued
  // Queued youngest -- the eviction victim below; its own shed callback
  // carries the Busy reply.
  sim::SimTime evicted_hint = 0;
  ac.offer(tenant_b(), AdmitPriority::kFresh, [] { FAIL() << "admitted"; },
           [&evicted_hint](sim::SimTime t) { evicted_hint = t; });

  // Queue full: a fresh arrival is shed outright, with a backoff hint.
  sim::SimTime fresh_hint = 0;
  ac.offer(tenant_b(), AdmitPriority::kFresh, [] { FAIL() << "admitted"; },
           [&fresh_hint](sim::SimTime t) { fresh_hint = t; });
  EXPECT_GE(fresh_hint, config.retry_after_floor);
  EXPECT_EQ(evicted_hint, 0);  // still queued

  // A repair arrival instead evicts the youngest queued fresh request and
  // takes its place; the victim gets the Busy reply.
  ac.offer(tenant_b(), AdmitPriority::kRepair, nop, no_shed);
  EXPECT_GE(evicted_hint, config.retry_after_floor);
  EXPECT_EQ(ac.queued_count(), 2u);
  EXPECT_EQ(ac.stats().shed, 2u);
  EXPECT_EQ(ac.stats().offered,
            ac.stats().admitted + ac.stats().shed + ac.queued_count());
}

TEST(Admission, QueuedRequestDrainsWhenTokensRefill) {
  sim::Simulator sim;
  AdmissionConfig config;
  config.tenant_rate = 1000.0;
  config.tenant_burst = 1.0;
  AdmissionController ac(sim, config);

  bool first = false;
  bool second = false;
  auto no_shed = [](sim::SimTime) { FAIL() << "unexpected shed"; };
  ac.offer(tenant_a(), AdmitPriority::kFresh, [&first] { first = true; },
           no_shed);
  EXPECT_TRUE(first);  // burst token, fast path
  // No tokens left: queued, waiting on the drain timer.
  ac.offer(tenant_a(), AdmitPriority::kFresh, [&second] { second = true; },
           no_shed);
  EXPECT_FALSE(second);
  EXPECT_EQ(ac.queued_count(), 1u);

  sim.run_until(sim.now() + sim::milliseconds(2));
  EXPECT_TRUE(second);
  EXPECT_EQ(ac.queued_count(), 0u);
}

// --- half-open control sessions --------------------------------------------------

TEST(Admission, HalfOpenSessionsAreReapedTouchedAndCompleted) {
  sim::Simulator sim;
  AdmissionConfig config;
  config.half_open_timeout = sim::milliseconds(20);
  AdmissionController ac(sim, config);

  // Abandoned: the reaper collects it at the idle deadline.
  const auto abandoned = ac.open_session(tenant_a());
  ASSERT_NE(abandoned, 0u);
  sim.run_until(sim.now() + sim::milliseconds(25));
  EXPECT_FALSE(ac.touch_session(abandoned));
  EXPECT_FALSE(ac.complete_session(abandoned));
  EXPECT_EQ(ac.stats().sessions_reaped, 1u);

  // Touched: each touch pushes the deadline out; completion disarms it.
  const auto nursed = ac.open_session(tenant_a());
  ASSERT_NE(nursed, 0u);
  sim.run_until(sim.now() + sim::milliseconds(15));
  EXPECT_TRUE(ac.touch_session(nursed));
  sim.run_until(sim.now() + sim::milliseconds(15));  // past the original
  EXPECT_TRUE(ac.complete_session(nursed));
  sim.run_until();
  EXPECT_EQ(ac.stats().sessions_reaped, 1u);
  EXPECT_EQ(ac.stats().sessions_completed, 1u);
  EXPECT_EQ(ac.half_open_count(), 0u);
  EXPECT_TRUE(ac.zombie_sessions().empty());
}

TEST(Admission, HalfOpenQuotaRejectsTheSlowlorisTenant) {
  sim::Simulator sim;
  AdmissionConfig config;
  config.tenant_half_open_quota = 4;
  AdmissionController ac(sim, config);

  for (std::size_t i = 0; i < config.tenant_half_open_quota; ++i) {
    EXPECT_NE(ac.open_session(tenant_a()), 0u);
  }
  EXPECT_EQ(ac.open_session(tenant_a()), 0u);  // over quota: rejected
  EXPECT_NE(ac.open_session(tenant_b()), 0u);  // other tenants unaffected
  EXPECT_EQ(ac.stats().sessions_rejected, 1u);

  // Every abandoned session is eventually reaped; nothing leaks.
  sim.run_until();
  EXPECT_EQ(ac.half_open_count(), 0u);
  EXPECT_EQ(ac.stats().sessions_reaped, 5u);
}

// --- through the MimicController ------------------------------------------------

TEST(Admission, ClientHonorsBusyBackoffAndStillEstablishes) {
  FabricOptions fo;
  fo.mic.admission.tenant_rate = 2000.0;  // refills within the retry backoff
  fo.mic.admission.tenant_burst = 1.0;
  fo.mic.admission.queue_capacity = 0;  // every overload is an explicit shed
  Fabric fabric(fo);
  MicServer server(fabric.host(12), 7000, fabric.rng());

  // Burn the client's one burst token so its establish gets shed.
  ASSERT_TRUE(fabric.mc().admission().offer_sync(fabric.ip(0)).admitted);

  MicChannelOptions o;
  o.responder_ip = fabric.ip(12);
  o.responder_port = 7000;
  MicChannel channel(fabric.host(0), fabric.mc(), o, fabric.rng());
  fabric.simulator().run_until();

  EXPECT_TRUE(channel.ready());
  EXPECT_FALSE(channel.failed());
  EXPECT_GE(channel.times_shed(), 1u);
  EXPECT_GE(fabric.mc().admission().stats().shed, 1u);
  EXPECT_TRUE(audit::run_all(fabric.mc()).ok);
}

TEST(Admission, ShedRetryBudgetExhaustionFailsTheChannel) {
  FabricOptions fo;
  // A zero pending quota sheds every asynchronous establish outright, no
  // matter how long the client waits -- the retry budget must be finite.
  fo.mic.admission.tenant_pending_quota = 0;
  Fabric fabric(fo);
  MicServer server(fabric.host(12), 7000, fabric.rng());

  MicChannelOptions o;
  o.responder_ip = fabric.ip(12);
  o.responder_port = 7000;
  o.shed_retry_limit = 3;
  MicChannel channel(fabric.host(0), fabric.mc(), o, fabric.rng());
  fabric.simulator().run_until();

  EXPECT_TRUE(channel.failed());
  EXPECT_EQ(channel.times_shed(), 4u);  // initial + 3 retries, all shed
  EXPECT_NE(channel.error().find("shed retry budget"), std::string::npos);
  EXPECT_TRUE(audit::run_all(fabric.mc()).ok);
}

TEST(Admission, BatchCannotBypassPerTenantQuota) {
  FabricOptions fo;
  fo.mic.admission.tenant_rate = 1e-9;
  fo.mic.admission.tenant_burst = 2.0;
  Fabric fabric(fo);

  std::vector<core::EstablishRequest> requests;
  for (int i = 0; i < 5; ++i) {
    core::EstablishRequest r;
    r.initiator_ip = fabric.ip(0);
    r.responder_ip = fabric.ip(12 + (i % 2));  // two destination groups
    r.responder_port = 7000;
    r.initiator_sports = {static_cast<net::L4Port>(40001 + i)};
    requests.push_back(r);
  }
  const auto results = fabric.mc().establish_batch(requests);
  ASSERT_EQ(results.size(), 5u);

  int ok = 0;
  int busy = 0;
  for (const auto& r : results) {
    if (r.ok) ++ok;
    if (r.busy) {
      ++busy;
      EXPECT_GE(r.retry_after, fo.mic.admission.retry_after_floor);
      EXPECT_FALSE(r.ok);
    }
  }
  EXPECT_EQ(ok, 2);  // exactly the burst budget
  EXPECT_EQ(busy, 3);
  EXPECT_TRUE(audit::run_all(fabric.mc()).ok);
}

TEST(Admission, ProbesStayExemptWhileTenantIsDrained) {
  FabricOptions fo;
  fo.mic.admission.tenant_rate = 1e-9;
  fo.mic.admission.tenant_burst = 1.0;  // one establish, then drained
  Fabric fabric(fo);
  MicServer server(fabric.host(12), 7000, fabric.rng());

  MicChannelOptions o;
  o.responder_ip = fabric.ip(12);
  o.responder_port = 7000;
  MicChannel channel(fabric.host(0), fabric.mc(), o, fabric.rng());
  fabric.simulator().run_until();
  ASSERT_TRUE(channel.ready());

  // The tenant's bucket is now empty -- establishment would be shed...
  EXPECT_FALSE(fabric.mc().admission().offer_sync(fabric.ip(0)).admitted);

  // ...but the flooded tenant's live channel keeps its liveness checks:
  // probes bypass the token buckets entirely.
  bool answered = false;
  bool alive = false;
  fabric.mc().probe_channel(
      channel.id(), [](core::MimicController::ChannelEvent, const std::string&) {},
      [&](bool a) {
        answered = true;
        alive = a;
      });
  fabric.simulator().run_until();
  EXPECT_TRUE(answered);
  EXPECT_TRUE(alive);
  EXPECT_GE(fabric.mc().admission().stats().exempt, 1u);
  EXPECT_TRUE(audit::run_all(fabric.mc()).ok);
}

TEST(Admission, CompletedControlSessionEstablishesReapedOneIsDropped) {
  FabricOptions fo;
  fo.mic.admission.half_open_timeout = sim::milliseconds(20);
  Fabric fabric(fo);
  const net::Ipv4 client = fabric.ip(0);
  const auto& key = fabric.mc().register_client(client);

  core::EstablishRequest request;
  request.initiator_ip = client;
  request.responder_ip = fabric.ip(12);
  request.responder_port = 7000;
  request.initiator_sports = {40001};
  std::vector<std::uint8_t> bytes = core::serialize_request(request);
  core::crypt_control_message(key, 7, bytes);

  // Nursed to completion: the session turns into a normal establishment.
  const auto id = fabric.mc().open_control_session(client);
  ASSERT_NE(id, 0u);
  fabric.simulator().run_until(fabric.simulator().now() +
                               sim::milliseconds(15));
  ASSERT_TRUE(fabric.mc().touch_control_session(id));
  core::EstablishResult result;
  bool answered = false;
  ASSERT_TRUE(fabric.mc().complete_control_session(
      id, client, bytes, 7,
      [&](const core::EstablishResult& r) {
        answered = true;
        result = r;
      }));
  fabric.simulator().run_until();
  EXPECT_TRUE(answered);
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_NE(fabric.mc().channel(result.channel), nullptr);

  // Abandoned: the reaper got there first; the late completion is dropped.
  const auto late = fabric.mc().open_control_session(client);
  ASSERT_NE(late, 0u);
  fabric.simulator().run_until();  // quiescence is past the idle deadline
  EXPECT_FALSE(fabric.mc().complete_control_session(
      late, client, bytes, 8, [](const core::EstablishResult&) {
        FAIL() << "reaped session must not establish";
      }));
  EXPECT_EQ(fabric.mc().admission().stats().sessions_reaped, 1u);
  EXPECT_TRUE(audit::run_all(fabric.mc()).ok);
}

// --- AC-1 negatives ---------------------------------------------------------------

TEST(Admission, AuditCatchesOverQuotaAdmission) {
  Fabric fabric;
  fabric.mc().admission().debug_force_admit(fabric.ip(3));

  const audit::RunReport report = audit::run_all(fabric.mc());
  EXPECT_FALSE(report.ok);
  EXPECT_FALSE(report.check("AC-1").ok);
  ASSERT_FALSE(report.check("AC-1").violations.empty());
  EXPECT_NE(report.check("AC-1").violations.front().find("quota"),
            std::string::npos);
  // The corruption is AC-1's alone; the fabric invariants stay green.
  EXPECT_TRUE(report.check("FT-1").ok);
  EXPECT_TRUE(report.check("FD-1").ok);
  EXPECT_TRUE(report.check("RC-1").ok);
}

TEST(Admission, AuditCatchesLeakedHalfOpenSession) {
  Fabric fabric;
  fabric.simulator().run_until(sim::milliseconds(1));
  const auto id = fabric.mc().admission().debug_leak_session(fabric.ip(3));
  ASSERT_NE(id, 0u);

  const audit::RunReport report = audit::run_all(fabric.mc());
  EXPECT_FALSE(report.ok);
  EXPECT_FALSE(report.check("AC-1").ok);
  ASSERT_FALSE(report.check("AC-1").violations.empty());
  EXPECT_NE(report.check("AC-1").violations.front().find("no reaper"),
            std::string::npos);
}

// --- flood soak: the whole pipeline under attack, deterministically ---------------

struct FloodOutcome {
  std::uint64_t received = 0;
  std::size_t survivors = 0;
  std::uint64_t honest_shed = 0;
  std::uint64_t flood_sent = 0;
  std::uint64_t flood_answered = 0;
  std::uint64_t flood_shed = 0;
  std::uint64_t slow_sessions = 0;
  std::uint64_t sessions_reaped = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t trace_hash = 0;  // see ChaosOutcome::trace_hash
  std::uint64_t trace_packets = 0;

  bool operator==(const FloodOutcome&) const = default;
};

/// One seeded establishment-flood + slow-client schedule against a fabric
/// with a deliberately tight admission config: honest clients (with shed
/// backoff) must all come up and deliver, every attack request must be
/// answered or provably dropped, every abandoned session reaped, and the
/// books must balance (AC-1) at quiescence.
FloodOutcome run_flood(Fabric& fabric, std::uint64_t seed) {
  net::TraceHash trace(fabric.network());
  MicServer server(fabric.host(12), 7000, fabric.rng());
  std::uint64_t received = 0;
  server.set_on_channel([&](core::MicServerChannel& channel) {
    channel.set_on_data(
        [&](const transport::ChunkView& view) { received += view.length; });
  });

  // Honest clients come up BEFORE the attack so the flood hits a working
  // control plane (and some establish DURING it, via auto_reestablish off
  // -- their shed retries are the interesting path).
  std::vector<std::unique_ptr<MicChannel>> clients;
  for (const std::size_t idx : {std::size_t{0}, std::size_t{3}, std::size_t{5}}) {
    MicChannelOptions o;
    o.responder_ip = fabric.ip(12);
    o.responder_port = 7000;
    o.flow_count = 1 + static_cast<int>(idx % 2);
    clients.push_back(std::make_unique<MicChannel>(
        fabric.host(idx), fabric.mc(), o, fabric.rng()));
  }

  FaultInjectorOptions fo;
  fo.seed = seed;
  fo.link_flaps = 0;  // isolate the control-plane attack
  fo.switch_crashes = 0;
  fo.install_fault_bursts = 0;
  fo.control_drop_bursts = 0;
  fo.establish_floods = 2;
  fo.flood_attackers = 3;
  fo.flood_requests = 60;
  fo.flood_duration = sim::milliseconds(4);
  fo.slow_client_sessions = 6;
  fo.slow_client_touches = 2;
  FaultInjector injector(fabric.network(), fabric.mc(), fo);
  injector.arm();
  fabric.simulator().run_until();

  FloodOutcome out;
  out.flood_sent = injector.flood_sent();
  out.flood_answered = injector.flood_answered();
  out.flood_shed = injector.flood_shed();
  out.slow_sessions = injector.slow_sessions_opened();
  EXPECT_EQ(out.flood_sent,
            static_cast<std::uint64_t>(fo.establish_floods) *
                fo.flood_attackers * fo.flood_requests);
  EXPECT_EQ(out.flood_answered, out.flood_sent);  // no silent drops: no crash
  EXPECT_GT(out.flood_shed, 0u);  // the tight config actually shed attackers

  // Quiescence: the reaper collected every abandoned session and the
  // books balance -- AC-1 runs as part of the registry sweep.
  EXPECT_TRUE(fabric.simulator().idle());
  const audit::RunReport report = audit::run_all(fabric.mc());
  EXPECT_TRUE(report.ok) << report.first_violation();
  const auto& stats = fabric.mc().admission().stats();
  EXPECT_EQ(stats.sessions_reaped, out.slow_sessions);  // all abandoned
  EXPECT_EQ(fabric.mc().admission().half_open_count(), 0u);

  // No starvation: every honest client established despite the flood and
  // still delivers, byte for byte.
  constexpr std::uint64_t kProbe = 16 * 1024;
  std::uint64_t expected = 0;
  for (const auto& client : clients) {
    EXPECT_TRUE(client->ready());
    EXPECT_FALSE(client->failed()) << client->error();
    if (client->failed() || !client->ready()) continue;
    client->send(transport::Chunk::virtual_bytes(kProbe));
    expected += kProbe;
    ++out.survivors;
    out.honest_shed += client->times_shed();
  }
  fabric.simulator().run_until();
  EXPECT_EQ(received, expected);

  out.received = received;
  out.admitted = stats.admitted;
  out.shed = stats.shed;
  out.sessions_reaped = stats.sessions_reaped;
  out.trace_hash = trace.value();
  out.trace_packets = trace.packets();
  return out;
}

FabricOptions flood_fabric_options(int sim_shards = 1) {
  FabricOptions fo;
  fo.seed = 4242;
  fo.sim_shards = sim_shards;
  // Tight enough that a 60-request burst per attacker saturates, generous
  // enough that honest retries land within their backoff budget.
  fo.mic.admission.tenant_rate = 2000.0;
  fo.mic.admission.tenant_burst = 8.0;
  fo.mic.admission.queue_capacity = 16;
  fo.mic.admission.max_in_service = 8;
  fo.mic.admission.half_open_timeout = sim::milliseconds(10);
  return fo;
}

TEST(FloodSoak, AttackIsShedHonestClientsSurvive) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Fabric fabric(flood_fabric_options());
    run_flood(fabric, seed);
  }
}

TEST(FloodSoak, SameSeedSameDecisionsSameTrace) {
  // SIM-1 under attack: shed/admit decisions, reap counts and the packet
  // trace fingerprint replay bit-identically for an identical seed.
  auto once = [] {
    Fabric fabric(flood_fabric_options());
    return run_flood(fabric, 3);
  };
  const FloodOutcome a = once();
  const FloodOutcome b = once();
  EXPECT_EQ(a, b);
  EXPECT_GT(a.trace_packets, 0u);
}

TEST(FloodSoak, ShardedEngineReplaysIdentically) {
  // The pod-sharded coordinator must make the same admission decisions in
  // the same order: the serial-exact interleave is engine-count invariant.
  Fabric single(flood_fabric_options(1));
  const FloodOutcome a = run_flood(single, 4);
  Fabric sharded(flood_fabric_options(4));
  const FloodOutcome b = run_flood(sharded, 4);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace mic
