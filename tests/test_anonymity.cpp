// Tests reproducing the paper's security analysis (Sec V) as measurements:
// endpoint exposure by observer position, single-MN correlation with and
// without partial multicast, size-based analysis against multiple m-flows.
#include <gtest/gtest.h>

#include "anonymity/attacks.hpp"
#include "core/fabric.hpp"
#include "core/mic_client.hpp"

namespace mic::anonymity {
namespace {

using core::Fabric;
using core::MicChannel;
using core::MicChannelOptions;
using core::MicServer;

struct AttackBed {
  AttackBed() : server(fabric.host(12), 7000, fabric.rng()) {
    server.set_on_channel([this](core::MicServerChannel& channel) {
      channel.set_on_data([this](const transport::ChunkView& view) {
        server_received += view.length;
      });
    });
  }

  MicChannelOptions options(int flows = 1, int decoys = 0) {
    MicChannelOptions o;
    o.responder_ip = fabric.ip(12);
    o.responder_port = 7000;
    o.flow_count = flows;
    o.multicast_decoys = decoys;
    return o;
  }

  Fabric fabric;
  MicServer server;
  std::uint64_t server_received = 0;
};

TEST(Exposure, SwitchPositionsRevealAtMostOneEndpoint) {
  // Paper Sec V "Compromise switches": before the first MN the sender is
  // visible but not the receiver; after the last MN vice versa; no single
  // switch links both.
  AttackBed bed;
  // Compromise every switch, one observer each.
  std::vector<std::unique_ptr<Observer>> observers;
  for (const topo::NodeId sw : bed.fabric.network().graph().switches()) {
    auto observer = std::make_unique<Observer>();
    observer->compromise_switch(bed.fabric.network(), sw);
    observers.push_back(std::move(observer));
  }

  MicChannel channel(bed.fabric.host(0), bed.fabric.mc(), bed.options(),
                     bed.fabric.rng());
  channel.send(transport::Chunk::virtual_bytes(128 * 1024));
  bed.fabric.simulator().run_until();
  ASSERT_EQ(bed.server_received, 128u * 1024u);

  int saw_initiator = 0;
  int saw_responder = 0;
  for (const auto& observer : observers) {
    const ExposureReport report = endpoint_exposure(
        observer->records(), bed.fabric.ip(0), bed.fabric.ip(12));
    EXPECT_FALSE(report.linked);
    saw_initiator += report.saw_initiator;
    saw_responder += report.saw_responder;
  }
  // The edge segments do expose one endpoint each (the paper concedes
  // this), but never both at one point.
  EXPECT_GT(saw_initiator, 0);
  EXPECT_GT(saw_responder, 0);
}

TEST(Exposure, MiddleSwitchSeesNeitherEndpoint) {
  AttackBed bed;
  MicChannel channel(bed.fabric.host(0), bed.fabric.mc(), bed.options(),
                     bed.fabric.rng());
  bed.fabric.simulator().run_until();
  ASSERT_TRUE(channel.ready());

  const auto* state = bed.fabric.mc().channel(channel.id());
  ASSERT_NE(state, nullptr);
  const auto& plan = state->flows[0];
  ASSERT_EQ(plan.mn_positions.size(), 3u);

  // A switch strictly between the first and last MN (the middle MN itself).
  const topo::NodeId middle = plan.path[plan.mn_positions[1]];
  Observer observer;
  observer.compromise_switch(bed.fabric.network(), middle);

  channel.send(transport::Chunk::virtual_bytes(64 * 1024));
  bed.fabric.simulator().run_until();

  const ExposureReport report = endpoint_exposure(
      observer.records(), bed.fabric.ip(0), bed.fabric.ip(12));
  EXPECT_FALSE(report.saw_initiator);
  EXPECT_FALSE(report.saw_responder);
}

TEST(Correlation, SingleMnMatchingSucceedsWithoutMulticast) {
  AttackBed bed;
  MicChannel channel(bed.fabric.host(0), bed.fabric.mc(), bed.options(),
                     bed.fabric.rng());
  bed.fabric.simulator().run_until();
  const auto* state = bed.fabric.mc().channel(channel.id());
  const topo::NodeId first_mn =
      state->flows[0].path[state->flows[0].mn_positions[0]];

  Observer observer;
  observer.compromise_switch(bed.fabric.network(), first_mn);
  channel.send(transport::Chunk::virtual_bytes(256 * 1024));
  bed.fabric.simulator().run_until();

  const CorrelationReport report =
      correlate_at_switch(observer, sim::milliseconds(10));
  EXPECT_GT(report.ingress_packets, 0u);
  EXPECT_GT(report.matched_packets, 0u);
  // Without decoys the adversary correlates nearly every packet uniquely.
  EXPECT_GT(report.expected_success, 0.9);
}

TEST(Correlation, PartialMulticastDilutesMatching) {
  AttackBed bed;
  auto options = bed.options(/*flows=*/1, /*decoys=*/2);
  MicChannel channel(bed.fabric.host(0), bed.fabric.mc(), options,
                     bed.fabric.rng());
  bed.fabric.simulator().run_until();
  const auto* state = bed.fabric.mc().channel(channel.id());
  const topo::NodeId first_mn =
      state->flows[0].path[state->flows[0].mn_positions[0]];

  Observer observer;
  observer.compromise_switch(bed.fabric.network(), first_mn);
  channel.send(transport::Chunk::virtual_bytes(256 * 1024));
  bed.fabric.simulator().run_until();

  const CorrelationReport report =
      correlate_at_switch(observer, sim::milliseconds(10));
  EXPECT_GT(report.matched_packets, 0u);
  // With k=2 decoys the candidate set per ingress packet approaches 3 and
  // the expected success approaches 1/3.
  EXPECT_GT(report.mean_candidates, 2.0);
  EXPECT_LT(report.expected_success, 0.55);
}

TEST(SizeAnalysis, SingleFlowRevealsSizeMultiFlowHidesIt) {
  // Paper Sec IV-C: "an adversary cannot obtain the real size of the
  // traffic unless he knows the m-flow number and has correlated all the
  // m-flows."
  constexpr std::uint64_t kBytes = 1024 * 1024;

  auto observe_fraction = [&](int flows) {
    AttackBed bed;
    auto options = bed.options(flows);
    MicChannel channel(bed.fabric.host(0), bed.fabric.mc(), options,
                       bed.fabric.rng());
    bed.fabric.simulator().run_until();
    const auto* state = bed.fabric.mc().channel(channel.id());

    // Observe one m-flow's middle segment (between MN1 and MN2).
    const auto& plan = state->flows[0];
    Observer observer;
    observer.compromise_switch(bed.fabric.network(),
                               plan.path[plan.mn_positions[1]]);
    channel.send(transport::Chunk::virtual_bytes(kBytes));
    bed.fabric.simulator().run_until();

    const std::uint64_t seen = observed_payload_bytes(
        observer.ingress(), plan.forward[1].src, plan.forward[1].dst);
    return static_cast<double>(seen) / static_cast<double>(kBytes);
  };

  // One flow: the observer sees (about) everything.
  EXPECT_GT(observe_fraction(1), 0.95);
  // Four flows: the observed m-flow carries only a fraction (plus framing).
  const double multi = observe_fraction(4);
  EXPECT_LT(multi, 0.6);
  EXPECT_GT(multi, 0.05);
}

TEST(GlobalAdversary, EndToEndContentTraceLinksEndpoints) {
  // The paper's concession (Sec IV-C / V): "the packets in the same m-flow
  // look the same at each hop ... MIC cannot defeat such end-to-end
  // correlation."  A global observer chains the payload fingerprint from
  // the initiator's access link to the responder's and links both.
  AttackBed bed;
  Observer global;
  for (topo::LinkId l = 0;
       l < static_cast<topo::LinkId>(bed.fabric.network().graph().link_count());
       ++l) {
    global.tap_link(bed.fabric.network(), l);
  }

  MicChannel channel(bed.fabric.host(0), bed.fabric.mc(), bed.options(),
                     bed.fabric.rng());
  channel.send(transport::Chunk::real(
      std::vector<std::uint8_t>{'s', 'e', 'c', 'r', 'e', 't'}));
  bed.fabric.simulator().run_until();

  // Pick any data packet's fingerprint from the initiator's access link.
  std::uint64_t tag = 0;
  const auto init_node = bed.fabric.host_node(0);
  for (const auto& record : global.records()) {
    if (record.from == init_node && record.payload_bytes > 0) {
      tag = record.content_tag;
      break;
    }
  }
  ASSERT_NE(tag, 0u);

  const EndToEndTrace trace = global_content_trace(global.records(), tag);
  EXPECT_TRUE(trace.linked);
  EXPECT_EQ(trace.source, bed.fabric.ip(0));
  EXPECT_EQ(trace.destination, bed.fabric.ip(12));
  EXPECT_GE(trace.hops_seen, 6u);
}

TEST(GlobalAdversary, PartialObservationDoesNotLink) {
  // The same attack with a realistic (non-global) adversary who misses the
  // access links recovers m-addresses, not the endpoints.
  AttackBed bed;
  MicChannel channel(bed.fabric.host(0), bed.fabric.mc(), bed.options(),
                     bed.fabric.rng());
  bed.fabric.simulator().run_until();

  const auto* state = bed.fabric.mc().channel(channel.id());
  const auto& plan = state->flows[0];
  Observer middle;
  middle.compromise_switch(bed.fabric.network(),
                           plan.path[plan.mn_positions[1]]);

  channel.send(transport::Chunk::real(
      std::vector<std::uint8_t>{'s', 'e', 'c', 'r', 'e', 't'}));
  bed.fabric.simulator().run_until();

  std::uint64_t tag = 0;
  for (const auto& record : middle.records()) {
    if (record.payload_bytes > 0) {
      tag = record.content_tag;
      break;
    }
  }
  ASSERT_NE(tag, 0u);
  const EndToEndTrace trace = global_content_trace(middle.records(), tag);
  // Whatever it chained together, neither endpoint is real.
  EXPECT_NE(trace.source, bed.fabric.ip(0));
  EXPECT_NE(trace.destination, bed.fabric.ip(12));
}

TEST(AttackPrimitives, ExposureOnSyntheticRecords) {
  const net::Ipv4 alice(10, 0, 0, 1), bob(10, 0, 0, 8), other(10, 0, 0, 3);
  std::vector<PacketRecord> records(3);
  records[0].src = alice;
  records[0].dst = other;
  records[1].src = other;
  records[1].dst = other;
  records[2].src = other;
  records[2].dst = bob;

  const ExposureReport report = endpoint_exposure(records, alice, bob);
  EXPECT_TRUE(report.saw_initiator);
  EXPECT_TRUE(report.saw_responder);
  EXPECT_FALSE(report.linked);  // never both on one packet

  records[1].src = alice;
  records[1].dst = bob;
  EXPECT_TRUE(endpoint_exposure(records, alice, bob).linked);
}

TEST(AttackPrimitives, RateOnSyntheticRecords) {
  const net::Ipv4 src(10, 0, 0, 1), dst(10, 0, 0, 8);
  std::vector<PacketRecord> records;
  for (int i = 0; i < 11; ++i) {
    PacketRecord record;
    record.src = src;
    record.dst = dst;
    record.payload_bytes = 1000;
    record.time = sim::milliseconds(static_cast<std::uint64_t>(i));
    records.push_back(record);
  }
  // 11 kB over 10 ms = 8.8 Mb/s.
  EXPECT_NEAR(observed_rate_bps(records, src, dst), 8.8e6, 1e5);
  // Too few packets: no rate.
  records.resize(1);
  EXPECT_DOUBLE_EQ(observed_rate_bps(records, src, dst), 0.0);
}

TEST(AttackPrimitives, GlobalTraceNeedsTwoSightings) {
  std::vector<PacketRecord> records(1);
  records[0].content_tag = 42;
  records[0].payload_bytes = 100;
  records[0].src = net::Ipv4(1, 1, 1, 1);
  records[0].dst = net::Ipv4(2, 2, 2, 2);
  EXPECT_FALSE(global_content_trace(records, 42).linked);
  EXPECT_FALSE(global_content_trace(records, 43).linked);  // unknown tag
}

TEST(Entropy, VisibleSourceHasZeroEntropy) {
  EXPECT_DOUBLE_EQ(sender_entropy_bits(true, 100), 0.0);
  EXPECT_DOUBLE_EQ(sender_entropy_bits(false, 1), 0.0);
  EXPECT_DOUBLE_EQ(sender_entropy_bits(false, 8), 3.0);
}

TEST(Entropy, RestrictionSetsGiveNonTrivialAnonymity) {
  // The m_src restriction set at an aggregation switch's up-port covers a
  // pod's hosts: the adversary's guessing entropy there is log2(k^2/4).
  Fabric fabric;
  const auto& restrictions = fabric.mc().restrictions();
  const topo::NodeId agg = fabric.fattree().agg_switches()[0];
  // Find an up-port (toward core).
  for (const auto& adj : fabric.network().graph().neighbors(agg)) {
    const int pod = fabric.fattree().pod_of(adj.peer);
    if (pod == -1) {  // core
      const auto& srcs = restrictions.allowed_src(agg, adj.local_port);
      EXPECT_EQ(srcs.size(), 4u);  // the pod's hosts
      EXPECT_DOUBLE_EQ(sender_entropy_bits(false, srcs.size()), 2.0);
      return;
    }
  }
  FAIL() << "no core-facing port found";
}

}  // namespace
}  // namespace mic::anonymity
