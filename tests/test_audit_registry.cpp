// The unified invariant-audit registry (src/core/audit_registry.hpp): one
// run_all(fabric) checkpoint covering FT-1, CA-1, PE-1, FD-1 and RC-1.  The
// negative tests deliberately violate each invariant and assert the
// registry attributes the failure to the *right* identifier -- an audit
// that fires on the wrong check (or on none) is worse than no audit.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/audit_registry.hpp"
#include "core/collision_audit.hpp"
#include "core/fabric.hpp"
#include "ctrl/l3_routing.hpp"
#include "topology/fattree.hpp"
#include "topology/path_engine.hpp"

namespace mic::core {
namespace {

struct AuditBed {
  AuditBed() {
    // One live channel so FD-1's coverage half and CA-1's active-flow half
    // have real state to audit.
    EstablishRequest request;
    request.initiator_ip = fabric.ip(0);
    request.responder_ip = fabric.ip(12);
    request.responder_port = 7000;
    request.initiator_sports = {40001};
    const EstablishResult result = fabric.mc().establish(request);
    EXPECT_TRUE(result.ok) << result.error;
    channel = result.channel;
  }

  Fabric fabric;
  ChannelId channel = 0;
};

TEST(AuditRegistry, RunsAllChecksCleanOnHealthyFabric) {
  AuditBed bed;
  const audit::RunReport report = audit::run_all(bed.fabric);
  EXPECT_TRUE(report.ok) << report.first_violation();
  EXPECT_EQ(report.first_violation(), "");

  const auto ids = audit::Registry::instance().ids();
  ASSERT_EQ(ids.size(), 9u);
  EXPECT_EQ(ids[0], "FT-1");
  EXPECT_EQ(ids[1], "CA-1");
  EXPECT_EQ(ids[2], "PE-1");
  EXPECT_EQ(ids[3], "FD-1");
  EXPECT_EQ(ids[4], "RC-1");
  EXPECT_EQ(ids[5], "RC-2");
  EXPECT_EQ(ids[6], "SIM-2");
  EXPECT_EQ(ids[7], "SIM-3");
  EXPECT_EQ(ids[8], "AC-1");

  // Every check walked real state.
  EXPECT_GT(report.check("FT-1").items_checked, 0u);
  EXPECT_GT(report.check("CA-1").items_checked, 0u);
  EXPECT_GT(report.check("FD-1").items_checked, 0u);
  // RC-1 re-verified the live channel's rules against the journal.
  EXPECT_GT(report.check("RC-1").items_checked, 0u);
  EXPECT_EQ(report.check("RC-1").metric("journaled_channels"), 1u);
  // The live channel's m-flow rules surface through the FD-1 metric the
  // chaos tests assert on.
  EXPECT_GT(report.check("FD-1").metric("mflow_rules"), 0u);
  // SIM-2 drove its bounded differential program through both engines.
  EXPECT_GT(report.check("SIM-2").metric("diff_ops"), 0u);
  // SIM-3 ran its sharded/single differential AND executed real lookahead
  // windows in the parallel leg.
  EXPECT_GT(report.check("SIM-3").metric("diff_ops"), 0u);
  EXPECT_GT(report.check("SIM-3").metric("parallel_windows"), 0u);
  // AC-1 balanced the admission books; the establish above went through
  // offer_sync and must be accounted as offered + admitted.
  EXPECT_GT(report.check("AC-1").items_checked, 0u);
  EXPECT_GE(report.check("AC-1").metric("offered"), 1u);
  EXPECT_GE(report.check("AC-1").metric("admitted"), 1u);
}

TEST(AuditRegistry, SchedulerEquivalenceRunsStandalone) {
  // SIM-2 ignores controller state entirely -- the invariant is about the
  // scheduler engines, so the single-check entry point must be clean on
  // any fabric and report the ops it replayed.
  AuditBed bed;
  const audit::CheckResult sim =
      audit::Registry::instance().run("SIM-2", bed.fabric.mc());
  EXPECT_TRUE(sim.ok) << (sim.violations.empty() ? "" : sim.violations.front());
  EXPECT_EQ(sim.id, "SIM-2");
  EXPECT_EQ(sim.metric("diff_ops"), sim.items_checked);
  EXPECT_GT(sim.items_checked, 0u);
}

TEST(AuditRegistry, MatchesStandaloneAudits) {
  // The registry wraps the same audits the tests used to call directly;
  // the two views must agree.
  AuditBed bed;
  const audit::RunReport report = audit::run_all(bed.fabric.mc());
  const AuditReport collisions = audit_collisions(bed.fabric.mc());
  const AuditReport orphans = audit_orphan_rules(bed.fabric.mc());
  EXPECT_EQ(report.check("CA-1").ok, collisions.ok);
  EXPECT_EQ(report.check("CA-1").items_checked, collisions.rules_checked);
  EXPECT_EQ(report.check("FD-1").ok, orphans.ok);
  EXPECT_EQ(report.check("FD-1").metric("mflow_rules"), orphans.mflow_rules);
}

TEST(AuditRegistry, CatchesOrphanRuleByCookie) {
  // FD-1 negative: a rule tagged with a cookie no live channel owns.
  AuditBed bed;
  switchd::FlowRule orphan;
  orphan.priority = 5;
  orphan.match.dst = net::Ipv4(10, 3, 3, 3);
  orphan.actions = {switchd::DropAction{}};
  orphan.cookie = 0xDEADDEAD;  // neither kL3Cookie nor a live channel ID
  const topo::NodeId sw = bed.fabric.fattree().core_switches()[0];
  bed.fabric.mc().install_rule(sw, orphan, /*immediate=*/true);

  const audit::RunReport report = audit::run_all(bed.fabric);
  EXPECT_FALSE(report.ok);
  EXPECT_FALSE(report.check("FD-1").ok);
  ASSERT_FALSE(report.check("FD-1").violations.empty());
  EXPECT_NE(report.check("FD-1").violations.front().find("orphan"),
            std::string::npos);
  // The violation is FD-1's alone: the rule collides with nothing, carries
  // no label, and never touches the path cache.
  EXPECT_TRUE(report.check("FT-1").ok);
  EXPECT_TRUE(report.check("CA-1").ok);
  EXPECT_TRUE(report.check("PE-1").ok);
  EXPECT_EQ(report.first_violation().rfind("FD-1:", 0), 0u);
}

TEST(AuditRegistry, CatchesMagaPartitionViolation) {
  // CA-1 negative: an MN rewrite whose new label lives in the *common*
  // (CF) class -- breaking the MF/CF label-partition disjointness MAGA
  // guarantees.  Tagged with the live channel's cookie so FD-1 stays
  // clean and the failure is attributable to CA-1 alone.
  AuditBed bed;
  switchd::FlowRule rogue;
  rogue.priority = ctrl::kPriorityMFlow;
  rogue.match.src = net::Ipv4(10, 0, 0, 2);
  rogue.match.dst = net::Ipv4(10, 1, 0, 2);
  rogue.match.sport = 1111;
  rogue.match.dport = 2222;
  rogue.match.mpls = 0x1234;
  rogue.actions = {switchd::SetSrc{net::Ipv4(10, 2, 0, 2)},
                   switchd::SetDst{net::Ipv4(10, 3, 0, 2)},
                   switchd::SetSport{3333}, switchd::SetDport{4444},
                   switchd::SetMpls{bed.fabric.mc().registry().sample_cf_label()},
                   switchd::Output{0}};
  rogue.cookie = bed.channel;
  const topo::NodeId sw = bed.fabric.fattree().core_switches()[0];
  bed.fabric.mc().install_rule(sw, rogue, /*immediate=*/true);

  const audit::RunReport report = audit::run_all(bed.fabric);
  EXPECT_FALSE(report.ok);
  EXPECT_FALSE(report.check("CA-1").ok);
  ASSERT_FALSE(report.check("CA-1").violations.empty());
  EXPECT_NE(report.check("CA-1").violations.front().find("class"),
            std::string::npos);
  EXPECT_TRUE(report.check("FD-1").ok);
  EXPECT_TRUE(report.check("FT-1").ok);
}

TEST(AuditRegistry, CatchesPoisonedPathRow) {
  // PE-1 negative: corrupt one cached BFS row in place; the recompute-and-
  // compare audit must flag exactly that destination.
  AuditBed bed;
  const topo::NodeId dst = bed.fabric.host_node(12);
  // Make sure the row is cached (queries during establish likely did, but
  // don't depend on it).
  bed.fabric.mc().path_engine().warm_up({dst}, 1);
  ASSERT_TRUE(bed.fabric.mc().path_engine().debug_corrupt_cached_row(dst));

  const audit::RunReport report = audit::run_all(bed.fabric);
  EXPECT_FALSE(report.ok);
  EXPECT_FALSE(report.check("PE-1").ok);
  ASSERT_FALSE(report.check("PE-1").violations.empty());
  EXPECT_NE(report.check("PE-1").violations.front().find(std::to_string(dst)),
            std::string::npos);
  EXPECT_TRUE(report.check("FT-1").ok);
  EXPECT_TRUE(report.check("CA-1").ok);
  EXPECT_TRUE(report.check("FD-1").ok);

  // The single-check entry point agrees.
  const audit::CheckResult pe =
      audit::Registry::instance().run("PE-1", bed.fabric.mc());
  EXPECT_FALSE(pe.ok);
  EXPECT_EQ(pe.id, "PE-1");
}

TEST(PathEngineConcurrency, QueriesRaceWarmUpSafely) {
  // The thread model the annotations encode: concurrent read queries and
  // warm_up are safe together (rows_mu_ guards the row cache).  Under the
  // TSan tier this test puts that claim in front of the race detector;
  // plain builds still check PE-1 cleanliness afterwards.
  topo::FatTree ft(4);
  topo::PathEngine engine(ft.graph());
  const auto hosts = ft.graph().hosts();

  std::atomic<bool> go{false};
  std::atomic<std::uint64_t> sink{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&engine, &hosts, &go, &sink, t] {
      while (!go.load()) {
      }
      Rng rng(static_cast<std::uint64_t>(t) + 1);
      std::uint64_t local = 0;
      for (int i = 0; i < 200; ++i) {
        const topo::NodeId src = hosts[rng.below(hosts.size())];
        const topo::NodeId dst = hosts[rng.below(hosts.size())];
        local += engine.distance(src, dst);
        if (src != dst) {
          local += engine.sample_shortest_path(src, dst, rng).size();
        }
      }
      sink.fetch_add(local);
    });
  }
  workers.emplace_back([&engine, &hosts, &go] {
    while (!go.load()) {
    }
    engine.warm_up(hosts, 4);
  });
  go.store(true);
  for (auto& w : workers) w.join();

  EXPECT_EQ(engine.cached_rows(), hosts.size());
  std::vector<std::string> violations;
  EXPECT_EQ(engine.self_check(violations), hosts.size());
  EXPECT_TRUE(violations.empty()) << violations.front();
  EXPECT_GT(sink.load(), 0u);
}

}  // namespace
}  // namespace mic::core
