// Chaos / robustness tests: the failure-detection pipeline, transactional
// (all-or-nothing) rule installation with retry, switch-scope failures,
// teardown/reclaim racing repairs, and the seeded chaos soak across three
// topologies (fat-tree, leaf-spine, BCube).  Every run must end with a
// clean audit::run_all checkpoint (FT-1, CA-1, PE-1, FD-1) and surviving
// channels still delivering.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <set>

#include "core/audit_registry.hpp"
#include "core/fabric.hpp"
#include "core/fault_injector.hpp"
#include "core/mic_client.hpp"
#include "net/trace.hpp"
#include "topology/bcube.hpp"
#include "topology/leafspine.hpp"

namespace mic {
namespace {

using core::Fabric;
using core::FabricOptions;
using core::FaultInjector;
using core::FaultInjectorOptions;
using core::GenericFabric;
using core::MicChannel;
using core::MicChannelOptions;
using core::MicServer;
using core::MimicController;

topo::LinkId link_on_path(const topo::Graph& graph, const topo::Path& path,
                          std::size_t hop) {
  return graph.link_between(path[hop], path[hop + 1]);
}

/// A fabric-interior link in the middle of the first m-flow's path.
topo::LinkId interior_victim(MimicController& mc, core::ChannelId id) {
  const auto& plan = mc.channel(id)->flows[0];
  return link_on_path(mc.graph(), plan.path, plan.path.size() / 2);
}

bool path_uses_link(const topo::Graph& graph, const topo::Path& path,
                    topo::LinkId link) {
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (link_on_path(graph, path, i) == link) return true;
  }
  return false;
}

// --- failure detection --------------------------------------------------------

struct Bed {
  explicit Bed(FabricOptions options = {}) : fabric(options) {
    server = std::make_unique<MicServer>(fabric.host(12), 7000, fabric.rng());
    server->set_on_channel([this](core::MicServerChannel& channel) {
      channel.set_on_data([this](const transport::ChunkView& view) {
        received += view.length;
      });
    });
  }

  MicChannelOptions options() {
    MicChannelOptions o;
    o.responder_ip = fabric.ip(12);
    o.responder_port = 7000;
    return o;
  }

  Fabric fabric;
  std::unique_ptr<MicServer> server;
  std::uint64_t received = 0;
};

TEST(FailureDetection, LinkCutAloneTriggersRepair) {
  // No manual fail_link report anywhere: cutting the PHY must be enough.
  Bed bed;
  MicChannel channel(bed.fabric.host(0), bed.fabric.mc(), bed.options(),
                     bed.fabric.rng());
  bed.fabric.simulator().run_until();
  ASSERT_TRUE(channel.ready());

  const topo::LinkId victim =
      interior_victim(bed.fabric.mc(), channel.id());
  constexpr std::uint64_t kBytes = 512 * 1024;
  channel.send(transport::Chunk::virtual_bytes(kBytes));
  bed.fabric.simulator().run_until(bed.fabric.simulator().now() +
                                   sim::milliseconds(2));
  bed.fabric.network().set_link_up(victim, false);

  // Detection latency + southbound latency later the MC knows by itself.
  bed.fabric.simulator().run_until(bed.fabric.simulator().now() +
                                   sim::milliseconds(2));
  EXPECT_TRUE(bed.fabric.mc().failed_links().contains(victim));

  bed.fabric.simulator().run_until();
  EXPECT_EQ(bed.received, kBytes);
  EXPECT_EQ(channel.repair_count(), 1u);
  EXPECT_FALSE(path_uses_link(
      bed.fabric.network().graph(),
      bed.fabric.mc().channel(channel.id())->flows[0].path, victim));

  // Raising the PHY again clears the failure by itself too.
  bed.fabric.network().set_link_up(victim, true);
  bed.fabric.simulator().run_until();
  EXPECT_TRUE(bed.fabric.mc().failed_links().empty());
  const auto report = audit::run_all(bed.fabric);
  EXPECT_TRUE(report.ok) << report.first_violation();
}

TEST(FailureDetection, RestoreReoptimizesCommonFlowRouting) {
  // Satellite regression: a CF detour installed by reroute_around must not
  // outlive the failure.  The same TCP connection (same 5-tuple, same ECMP
  // hashes) must use its original links again once the link is back.
  Bed bed;
  bed.fabric.host(12).listen(9000, [](transport::TcpConnection&) {});
  auto& conn = bed.fabric.host(0).connect(bed.fabric.ip(12), 9000);
  bed.fabric.simulator().run_until();
  ASSERT_EQ(conn.state(), transport::TcpConnection::State::kEstablished);

  // Record which links the forward direction of this CF uses.
  std::set<topo::LinkId> forward_links;
  const net::Ipv4 dst = bed.fabric.ip(12);
  bed.fabric.network().add_global_tap(
      [&](topo::LinkId link, topo::NodeId, topo::NodeId, const net::Packet& p,
          sim::SimTime) {
        if (p.dst == dst && p.dport == 9000) forward_links.insert(link);
      });
  conn.send(transport::Chunk::virtual_bytes(64 * 1024));
  bed.fabric.simulator().run_until();
  const std::set<topo::LinkId> original = forward_links;
  ASSERT_FALSE(original.empty());

  // Pick an interior link off the recorded path and cut it.
  topo::LinkId victim = topo::kInvalidLink;
  for (const topo::LinkId link : original) {
    const auto [a, b] = bed.fabric.network().graph().link_endpoints(link);
    if (bed.fabric.network().graph().is_switch(a) &&
        bed.fabric.network().graph().is_switch(b)) {
      victim = link;
      break;
    }
  }
  ASSERT_NE(victim, topo::kInvalidLink);
  bed.fabric.network().set_link_up(victim, false);
  bed.fabric.simulator().run_until(bed.fabric.simulator().now() +
                                   sim::milliseconds(5));

  // Under the failure the detour avoids the victim...
  forward_links.clear();
  conn.send(transport::Chunk::virtual_bytes(64 * 1024));
  bed.fabric.simulator().run_until();
  EXPECT_FALSE(forward_links.contains(victim));

  // ...and after restoration the original route comes back exactly.
  bed.fabric.network().set_link_up(victim, true);
  bed.fabric.simulator().run_until();
  forward_links.clear();
  conn.send(transport::Chunk::virtual_bytes(64 * 1024));
  bed.fabric.simulator().run_until();
  EXPECT_EQ(forward_links, original);
}

// --- switch-scope failures ----------------------------------------------------

TEST(SwitchFailure, CrashRepairsChannelsAndRestoreRefillsTable) {
  Bed bed;
  MicChannel channel(bed.fabric.host(0), bed.fabric.mc(), bed.options(),
                     bed.fabric.rng());
  bed.fabric.simulator().run_until();
  ASSERT_TRUE(channel.ready());

  // Crash an interior switch on the channel's path.
  const auto& plan = bed.fabric.mc().channel(channel.id())->flows[0];
  const topo::NodeId victim = plan.path[plan.path.size() / 2];
  ASSERT_TRUE(bed.fabric.network().graph().is_switch(victim));

  constexpr std::uint64_t kBytes = 512 * 1024;
  channel.send(transport::Chunk::virtual_bytes(kBytes));
  const auto outcome = bed.fabric.mc().fail_switch(victim);
  EXPECT_EQ(outcome.repaired, 1u);
  EXPECT_EQ(outcome.lost, 0u);
  EXPECT_EQ(bed.fabric.mc().switch_at(victim)->table().rule_count(), 0u);

  bed.fabric.simulator().run_until();
  EXPECT_EQ(bed.received, kBytes);
  // The repaired path avoids the dead node entirely.
  const auto& new_plan = bed.fabric.mc().channel(channel.id())->flows[0];
  for (const topo::NodeId node : new_plan.path) {
    EXPECT_NE(node, victim);
  }
  EXPECT_TRUE(audit::run_all(bed.fabric).ok);

  // Recovery repopulates the rebooted switch's (cleared) table with CF
  // routing and clears the failure bookkeeping.
  bed.fabric.mc().restore_switch(victim);
  bed.fabric.simulator().run_until();
  EXPECT_TRUE(bed.fabric.mc().failed_switches().empty());
  EXPECT_TRUE(bed.fabric.mc().failed_links().empty());
  EXPECT_GT(bed.fabric.mc().switch_at(victim)->table().rule_count(), 0u);
  EXPECT_TRUE(audit::run_all(bed.fabric).ok);
}

// --- transactional installs ---------------------------------------------------

TEST(InstallFailure, EstablishmentRollsBackAndRetries) {
  // Every switch rejects every flow-mod: establishment must fail after the
  // retry budget and leave zero rules behind (all-or-nothing).
  Bed bed;
  for (const topo::NodeId sw : bed.fabric.network().graph().switches()) {
    bed.fabric.mc().switch_at(sw)->inject_install_faults(1.0, 99);
  }
  auto doomed = std::make_unique<MicChannel>(
      bed.fabric.host(0), bed.fabric.mc(), bed.options(), bed.fabric.rng());
  bed.fabric.simulator().run_until();
  EXPECT_TRUE(doomed->failed());
  EXPECT_FALSE(doomed->ready());
  EXPECT_EQ(bed.fabric.mc().active_channel_count(), 0u);
  EXPECT_GE(bed.fabric.mc().install_retries(), 1u);
  const auto report = audit::run_all(bed.fabric);
  EXPECT_TRUE(report.ok) << report.first_violation();
  // literally no channel rules anywhere
  EXPECT_EQ(report.check("FD-1").metric("mflow_rules"), 0u);
  doomed.reset();

  // Once the faults clear, the same request succeeds.
  for (const topo::NodeId sw : bed.fabric.network().graph().switches()) {
    bed.fabric.mc().switch_at(sw)->clear_install_faults();
  }
  MicChannel channel(bed.fabric.host(0), bed.fabric.mc(), bed.options(),
                     bed.fabric.rng());
  bed.fabric.simulator().run_until();
  EXPECT_TRUE(channel.ready());
  constexpr std::uint64_t kBytes = 64 * 1024;
  channel.send(transport::Chunk::virtual_bytes(kBytes));
  bed.fabric.simulator().run_until();
  EXPECT_EQ(bed.received, kBytes);
}

TEST(InstallFailure, RetryWithBackoffSucceedsOnceFaultClears) {
  // A transient fault burst: the first commit attempt fails, a backoff
  // retry lands after the burst ends, and the channel comes up anyway.
  Bed bed;
  for (const topo::NodeId sw : bed.fabric.network().graph().switches()) {
    bed.fabric.mc().switch_at(sw)->inject_install_faults(1.0, 7);
  }
  auto rejected = [&bed] {
    std::uint64_t total = 0;
    for (const topo::NodeId sw : bed.fabric.network().graph().switches()) {
      total += bed.fabric.mc().switch_at(sw)->installs_rejected();
    }
    return total;
  };
  MicChannel channel(bed.fabric.host(0), bed.fabric.mc(), bed.options(),
                     bed.fabric.rng());
  // Let the burst reject the whole first commit attempt, then lift it so a
  // backoff retry can land.
  while (rejected() == 0 &&
         bed.fabric.simulator().now() < sim::seconds(1)) {
    bed.fabric.simulator().run_until(bed.fabric.simulator().now() +
                                     sim::microseconds(100));
  }
  ASSERT_GT(rejected(), 0u);
  for (const topo::NodeId sw : bed.fabric.network().graph().switches()) {
    bed.fabric.mc().switch_at(sw)->clear_install_faults();
  }
  bed.fabric.simulator().run_until();
  EXPECT_TRUE(channel.ready());
  EXPECT_FALSE(channel.failed());
  EXPECT_GE(bed.fabric.mc().install_retries(), 1u);
  EXPECT_TRUE(audit::run_all(bed.fabric).ok);
}

// --- teardown / reclaim racing failures ---------------------------------------

TEST(TeardownRace, TeardownAcrossFailedLinkLeavesNoOrphans) {
  // Close a channel whose path just lost a link, before the MC has even
  // detected the cut.  Rule removal travels the out-of-band control
  // channel, so it must succeed everywhere -- no orphans, no repair of the
  // closed channel.
  Bed bed;
  MicChannel channel(bed.fabric.host(0), bed.fabric.mc(), bed.options(),
                     bed.fabric.rng());
  bed.fabric.simulator().run_until();
  ASSERT_TRUE(channel.ready());

  const topo::LinkId victim =
      interior_victim(bed.fabric.mc(), channel.id());
  bed.fabric.network().set_link_up(victim, false);
  channel.close();  // teardown races the detection pipeline
  bed.fabric.simulator().run_until();

  EXPECT_EQ(bed.fabric.mc().active_channel_count(), 0u);
  EXPECT_EQ(bed.fabric.mc().channels_repaired(), 0u);
  EXPECT_TRUE(audit::run_all(bed.fabric).ok);

  bed.fabric.network().set_link_up(victim, true);
  bed.fabric.simulator().run_until();
  EXPECT_TRUE(bed.fabric.mc().failed_links().empty());
}

TEST(TeardownRace, ReclaimIdleMidRepairLeavesNoOrphans) {
  // The repair's re-install commit is still in flight when the idle
  // reclaimer tears the channel down.  The superseded commit must not
  // resurrect any rules (FD-1).
  Bed bed;
  MicChannel channel(bed.fabric.host(0), bed.fabric.mc(), bed.options(),
                     bed.fabric.rng());
  bed.fabric.simulator().run_until();
  ASSERT_TRUE(channel.ready());
  bool lost = false;
  std::string reason;
  channel.set_on_lost([&](const std::string& r) {
    lost = true;
    reason = r;
  });
  channel.release_for_reuse();
  bed.fabric.simulator().run_until();

  const topo::LinkId victim =
      interior_victim(bed.fabric.mc(), channel.id());
  bed.fabric.network().set_link_up(victim, false);
  bed.fabric.mc().fail_link(victim);   // repair commit now in flight...
  bed.fabric.mc().reclaim_idle(0);     // ...and the channel is reclaimed
  bed.fabric.simulator().run_until();

  EXPECT_TRUE(lost);
  EXPECT_EQ(reason, "idle channel reclaimed");
  EXPECT_TRUE(channel.failed());
  EXPECT_EQ(bed.fabric.mc().active_channel_count(), 0u);
  EXPECT_TRUE(audit::run_all(bed.fabric).ok);

  bed.fabric.network().set_link_up(victim, true);
  bed.fabric.simulator().run_until();
  EXPECT_TRUE(bed.fabric.mc().failed_links().empty());
}

// --- chaos soak ---------------------------------------------------------------

struct ChaosOutcome {
  std::uint64_t received = 0;
  std::size_t survivors = 0;
  std::uint64_t lost = 0;
  std::uint64_t repaired = 0;
  std::uint64_t install_retries = 0;
  std::uint64_t control_drops = 0;
  int reestablishments = 0;
  // Event-trace fingerprint (SIM-1): every packet on every link, in firing
  // order, with timestamps.  Far stronger than the counter fields above --
  // two runs agree on the hash only if the schedulers fired the identical
  // event sequence.  The timing-wheel migration was validated by recording
  // these hashes under the binary-heap scheduler and replaying the same
  // seeds on the wheel.
  std::uint64_t trace_hash = 0;
  std::uint64_t trace_packets = 0;

  bool operator==(const ChaosOutcome&) const = default;
};

/// One seeded chaos schedule against an already-built fabric: establish a
/// handful of channels (half with automatic re-establishment), start
/// transfers, unleash the injector, then check every robustness invariant
/// at quiescence.
template <typename FabricT>
ChaosOutcome run_chaos(FabricT& fabric, std::size_t server_idx,
                       const std::vector<std::size_t>& client_idx,
                       std::uint64_t seed, int mn_count = 3) {
  net::TraceHash trace(fabric.network());
  MicServer server(fabric.host(server_idx), 7000, fabric.rng());
  std::uint64_t received = 0;
  server.set_on_channel([&](core::MicServerChannel& channel) {
    channel.set_on_data(
        [&](const transport::ChunkView& view) { received += view.length; });
  });

  std::vector<std::unique_ptr<MicChannel>> clients;
  for (std::size_t i = 0; i < client_idx.size(); ++i) {
    MicChannelOptions o;
    o.responder_ip = fabric.ip(server_idx);
    o.responder_port = 7000;
    o.flow_count = 1 + static_cast<int>(i % 2);
    o.mn_count = mn_count;
    o.auto_reestablish = (i % 2 == 0);
    clients.push_back(std::make_unique<MicChannel>(
        fabric.host(client_idx[i]), fabric.mc(), o, fabric.rng()));
  }
  fabric.simulator().run_until();
  for (const auto& client : clients) {
    EXPECT_TRUE(client->ready());
  }

  // Big enough that the early faults land mid-transfer.
  constexpr std::uint64_t kInitial = 1024 * 1024;
  for (const auto& client : clients) {
    client->send(transport::Chunk::virtual_bytes(kInitial));
  }

  FaultInjectorOptions fo;
  fo.seed = seed;
  FaultInjector injector(fabric.network(), fabric.mc(), fo);
  injector.arm();
  fabric.simulator().run_until();

  // Quiescence invariants: the simulator drained, the schedule healed
  // every fault it injected, and the rule state is exactly the live
  // channel state (FD-1) with no collisions.
  EXPECT_TRUE(fabric.simulator().idle());
  EXPECT_TRUE(fabric.mc().failed_links().empty());
  EXPECT_TRUE(fabric.mc().failed_switches().empty());
  const audit::RunReport report = audit::run_all(fabric.mc());
  EXPECT_TRUE(report.ok) << report.first_violation();

  // Every surviving channel still delivers, byte for byte.
  constexpr std::uint64_t kProbe = 16 * 1024;
  const std::uint64_t before = received;
  std::uint64_t expected = 0;
  ChaosOutcome out;
  for (const auto& client : clients) {
    if (client->failed() || !client->ready()) continue;
    EXPECT_NE(fabric.mc().channel(client->id()), nullptr);
    client->send(transport::Chunk::virtual_bytes(kProbe));
    expected += kProbe;
    ++out.survivors;
  }
  fabric.simulator().run_until();
  EXPECT_EQ(received - before, expected);

  out.received = received;
  out.lost = fabric.mc().channels_lost();
  out.repaired = fabric.mc().channels_repaired();
  out.install_retries = fabric.mc().install_retries();
  out.control_drops = fabric.mc().control_messages_dropped();
  for (const auto& client : clients) {
    out.reestablishments += client->reestablish_attempts();
  }
  out.trace_hash = trace.value();
  out.trace_packets = trace.packets();
  if (std::getenv("MIC_PRINT_TRACE_HASH") != nullptr) {
    std::fprintf(stderr, "TRACE_HASH chaos seed=%llu hash=%016llx n=%llu\n",
                 static_cast<unsigned long long>(seed),
                 static_cast<unsigned long long>(out.trace_hash),
                 static_cast<unsigned long long>(out.trace_packets));
  }
  return out;
}

constexpr std::uint64_t kSoakSeeds = 7;  // x3 topologies = 21 schedules

TEST(ChaosSoak, FatTree) {
  for (std::uint64_t seed = 1; seed <= kSoakSeeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    FabricOptions fo;
    fo.seed = 100 + seed;
    Fabric fabric(fo);
    run_chaos(fabric, 12, {0, 3, 5, 9}, seed);
  }
}

TEST(ChaosSoak, LeafSpine) {
  static const topo::LeafSpine ls(3, 4, 4);  // 16 hosts
  std::vector<std::pair<topo::NodeId, net::Ipv4>> addrs;
  for (const topo::NodeId h : ls.hosts()) {
    addrs.push_back({h, net::Ipv4{ls.host_ip(h)}});
  }
  for (std::uint64_t seed = 1; seed <= kSoakSeeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    FabricOptions fo;
    fo.seed = 200 + seed;
    GenericFabric fabric(ls.graph(), addrs, fo);
    run_chaos(fabric, 12, {0, 5, 10, 15}, seed);
  }
}

TEST(ChaosSoak, BCube) {
  static const topo::BCube bc(4, 1);  // 16 servers, 8 switches
  std::vector<std::pair<topo::NodeId, net::Ipv4>> addrs;
  for (const topo::NodeId s : bc.servers()) {
    addrs.push_back({s, net::Ipv4{bc.server_ip(s)}});
  }
  for (std::uint64_t seed = 1; seed <= kSoakSeeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    FabricOptions fo;
    fo.seed = 300 + seed;
    GenericFabric fabric(bc.graph(), addrs, fo);
    // MIC never transits hosts (MNs are switches) and the simulated hosts
    // have a single NIC (everything leaves via port 0, i.e. the level-0
    // switch), so on server-centric BCube only servers sharing their
    // level-0 switch can talk.  Server 12 = (3,0) and clients 13/14/15 all
    // hang off level-0 switch 3; each path crosses that one switch, so the
    // privacy level is 1.
    run_chaos(fabric, 12, {13, 14, 15}, seed, /*mn_count=*/1);
  }
}

// --- MC-crash chaos soak ------------------------------------------------------

struct CrashChaosOutcome {
  std::uint64_t received = 0;
  std::size_t alive = 0;
  std::uint64_t lost = 0;
  std::uint64_t repaired = 0;
  std::uint64_t silences = 0;
  int reestablishments = 0;
  std::size_t crashes = 0;
  std::size_t recovered = 0;
  std::size_t kept = 0;
  std::size_t reinstalled = 0;
  std::size_t replanned = 0;
  std::size_t orphans = 0;
  std::uint64_t trace_hash = 0;  // see ChaosOutcome::trace_hash
  std::uint64_t trace_packets = 0;

  bool operator==(const CrashChaosOutcome&) const = default;
};

/// Chaos with the controller itself as a casualty: the full fault mix plus
/// MC crash/recover cycles (optionally recovering from a tail-truncated
/// journal).  Clients run the survival machinery -- establishment timeout,
/// heartbeat, auto re-establishment -- so the run is bounded-time rather
/// than run-to-quiescence (a heartbeat never lets the event queue drain)
/// until the final close.
CrashChaosOutcome run_mc_crash_chaos(Fabric& fabric, std::uint64_t seed,
                                     int truncate_records) {
  net::TraceHash trace(fabric.network());
  MicServer server(fabric.host(12), 7000, fabric.rng());
  std::uint64_t received = 0;
  server.set_on_channel([&](core::MicServerChannel& channel) {
    channel.set_on_data(
        [&](const transport::ChunkView& view) { received += view.length; });
  });

  const std::vector<std::size_t> client_idx = {0, 3, 5, 9};
  std::vector<std::unique_ptr<MicChannel>> clients;
  for (std::size_t i = 0; i < client_idx.size(); ++i) {
    MicChannelOptions o;
    o.responder_ip = fabric.ip(12);
    o.responder_port = 7000;
    o.flow_count = 1 + static_cast<int>(i % 2);
    o.auto_reestablish = true;
    o.control_timeout = sim::milliseconds(10);
    o.control_retry_limit = 20;
    o.heartbeat_interval = sim::milliseconds(2);
    clients.push_back(std::make_unique<MicChannel>(
        fabric.host(client_idx[i]), fabric.mc(), o, fabric.rng()));
  }
  auto run_for = [&fabric](sim::SimTime dt) {
    fabric.simulator().run_until(fabric.simulator().now() + dt);
  };
  run_for(sim::milliseconds(30));
  for (const auto& client : clients) {
    EXPECT_TRUE(client->ready());
  }

  constexpr std::uint64_t kInitial = 256 * 1024;
  for (const auto& client : clients) {
    client->send(transport::Chunk::virtual_bytes(kInitial));
  }

  FaultInjectorOptions fo;
  fo.seed = seed;
  fo.mc_crashes = 2;
  fo.mc_crash_truncate_records = truncate_records;
  FaultInjector injector(fabric.network(), fabric.mc(), fo);
  injector.arm();
  // Window + outages + client backoffs, with slack: every fault healed,
  // every recovery settled, every surviving client re-attached.
  run_for(sim::milliseconds(400));

  EXPECT_GE(injector.mc_crashes_fired(), 1u);
  EXPECT_FALSE(fabric.mc().crashed());
  EXPECT_TRUE(fabric.mc().failed_links().empty());
  EXPECT_TRUE(fabric.mc().failed_switches().empty());

  // Zero orphan rules (FD-1) and journal/switch agreement (RC-1) after
  // every crash the schedule threw at us.
  const audit::RunReport report = audit::run_all(fabric.mc());
  EXPECT_TRUE(report.ok) << report.first_violation();

  // Every client that thinks it is up really is: the heartbeat has had
  // ample time to expose zombies, so a ready client maps to a live MC
  // channel and still delivers byte-for-byte.
  constexpr std::uint64_t kProbe = 16 * 1024;
  const std::uint64_t before = received;
  std::uint64_t expected = 0;
  CrashChaosOutcome out;
  for (const auto& client : clients) {
    if (client->failed() || !client->ready()) continue;
    EXPECT_NE(fabric.mc().channel(client->id()), nullptr);
    client->send(transport::Chunk::virtual_bytes(kProbe));
    expected += kProbe;
    ++out.alive;
  }
  run_for(sim::milliseconds(100));
  EXPECT_EQ(received - before, expected);

  out.received = received;
  out.lost = fabric.mc().channels_lost();
  out.repaired = fabric.mc().channels_repaired();
  out.crashes = injector.mc_crashes_fired();
  for (const auto& client : clients) {
    out.silences += client->controller_silences();
    out.reestablishments += client->reestablish_attempts();
  }
  for (const auto& recovery : injector.recoveries()) {
    out.recovered += recovery.channels_recovered;
    out.kept += recovery.channels_kept;
    out.reinstalled += recovery.channels_reinstalled;
    out.replanned += recovery.channels_replanned;
    out.orphans += recovery.orphan_rules_removed;
  }

  // Closing the clients stops the heartbeats; the simulator must then
  // drain completely (no stray timers, no immortal retransmissions).
  for (const auto& client : clients) client->close();
  fabric.simulator().run_until();
  EXPECT_TRUE(fabric.simulator().idle());
  EXPECT_TRUE(audit::run_all(fabric.mc()).ok);
  out.trace_hash = trace.value();
  out.trace_packets = trace.packets();
  if (std::getenv("MIC_PRINT_TRACE_HASH") != nullptr) {
    std::fprintf(stderr, "TRACE_HASH mc-crash seed=%llu hash=%016llx n=%llu\n",
                 static_cast<unsigned long long>(seed),
                 static_cast<unsigned long long>(out.trace_hash),
                 static_cast<unsigned long long>(out.trace_packets));
  }
  return out;
}

TEST(McCrashSoak, FatTree) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    FabricOptions fo;
    fo.seed = 400 + seed;
    Fabric fabric(fo);
    run_mc_crash_chaos(fabric, seed, /*truncate_records=*/0);
  }
}

TEST(McCrashSoak, TruncatedJournal) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    FabricOptions fo;
    fo.seed = 500 + seed;
    Fabric fabric(fo);
    run_mc_crash_chaos(fabric, seed, /*truncate_records=*/2);
  }
}

TEST(McCrashSoak, SameSeedSameOutcome) {
  auto once = [] {
    FabricOptions fo;
    fo.seed = 509;
    Fabric fabric(fo);
    return run_mc_crash_chaos(fabric, 21, /*truncate_records=*/1);
  };
  const CrashChaosOutcome first = once();
  const CrashChaosOutcome second = once();
  EXPECT_EQ(first, second);
}

TEST(ChaosSoak, SameSeedSameOutcome) {
  // SIM-1 under chaos: an identical seed must reproduce the identical
  // end-to-end outcome, loss/repair counts and all.
  auto once = [] {
    FabricOptions fo;
    fo.seed = 107;
    Fabric fabric(fo);
    return run_chaos(fabric, 12, {0, 5, 9}, 42);
  };
  const ChaosOutcome first = once();
  const ChaosOutcome second = once();
  EXPECT_EQ(first.received, second.received);
  EXPECT_EQ(first.survivors, second.survivors);
  EXPECT_EQ(first.lost, second.lost);
  EXPECT_EQ(first.repaired, second.repaired);
  EXPECT_EQ(first.install_retries, second.install_retries);
  EXPECT_EQ(first.control_drops, second.control_drops);
  EXPECT_EQ(first.reestablishments, second.reestablishments);
}

TEST(ChaosSoak, ShardedReplayBitIdentical) {
  // SIM-3 end-to-end: the pod-sharded engine in its serial-exact regime
  // must reproduce the single-engine chaos run bit for bit -- same event
  // interleave, same trace fingerprint, same loss/repair tallies.  This is
  // the property that lets every recorded soak trace_hash replay unchanged
  // under MIC_SIM_SHARDS=4.
  auto once = [](int shards) {
    FabricOptions fo;
    fo.seed = 107;
    fo.sim_shards = shards;
    fo.sim_threads = 1;
    Fabric fabric(fo);
    return run_chaos(fabric, 12, {0, 5, 9}, 42);
  };
  const ChaosOutcome single = once(1);
  const ChaosOutcome sharded = once(4);
  EXPECT_EQ(single, sharded);  // includes trace_hash and trace_packets
  EXPECT_NE(sharded.trace_hash, 0u);
}

TEST(McCrashSoak, ShardedReplayBitIdentical) {
  // The same bit-exactness holds with the controller crashing mid-run:
  // journal replays, switch resyncs and client heartbeats all ride the
  // global engine while device events live on the shards.
  auto once = [](int shards) {
    FabricOptions fo;
    fo.seed = 509;
    fo.sim_shards = shards;
    fo.sim_threads = 1;
    Fabric fabric(fo);
    return run_mc_crash_chaos(fabric, 21, /*truncate_records=*/1);
  };
  const CrashChaosOutcome single = once(1);
  const CrashChaosOutcome sharded = once(4);
  EXPECT_EQ(single, sharded);
  EXPECT_NE(sharded.trace_hash, 0u);
}

}  // namespace
}  // namespace mic
