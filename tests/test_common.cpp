// Unit tests for the common substrate: deterministic RNG and bit helpers.
#include <gtest/gtest.h>

#include <set>

#include "common/bits.hpp"
#include "common/rng.hpp"

namespace mic {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values hit
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ExponentialMeanRoughlyCorrect) {
  Rng rng(17);
  double sum = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / kSamples, 5.0, 0.2);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkIndependentStreams) {
  Rng parent(21);
  Rng child = parent.fork();
  // The child does not replay the parent.
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += parent.next() == child.next();
  EXPECT_LT(equal, 3);
}

TEST(Bits, RotlRotrInverse) {
  for (unsigned r = 0; r < 32; ++r) {
    const std::uint32_t v = 0xdeadbeef;
    EXPECT_EQ(rotr(rotl(v, r), r), v);
  }
  for (unsigned r = 0; r < 16; ++r) {
    const std::uint16_t v = 0xbeef;
    EXPECT_EQ(rotr(rotl(v, r), r), v);
  }
  for (unsigned r = 0; r < 8; ++r) {
    const std::uint8_t v = 0xa5;
    EXPECT_EQ(rotr(rotl(v, r), r), v);
  }
}

TEST(Bits, FoldHalves) {
  EXPECT_EQ(fold16(0x12345678u), 0x1234u ^ 0x5678u);
  EXPECT_EQ(fold8(std::uint16_t{0xabcd}), 0xabu ^ 0xcdu);
}

TEST(Bits, LoadStoreRoundTrip) {
  std::uint8_t buf[8];
  store_le32(buf, 0x01020304u);
  EXPECT_EQ(load_le32(buf), 0x01020304u);
  EXPECT_EQ(buf[0], 0x04);
  store_be32(buf, 0x01020304u);
  EXPECT_EQ(load_be32(buf), 0x01020304u);
  EXPECT_EQ(buf[0], 0x01);
  store_le64(buf, 0x0102030405060708ull);
  EXPECT_EQ(load_le64(buf), 0x0102030405060708ull);
  store_be64(buf, 0x0102030405060708ull);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[7], 0x08);
}

TEST(Bits, Splitmix64KnownSequence) {
  // Reference values from the splitmix64 reference implementation with
  // seed 0.
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(splitmix64(state), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(splitmix64(state), 0x06c45d188009454fULL);
}

}  // namespace
}  // namespace mic
