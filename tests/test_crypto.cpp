// Known-answer and property tests for the from-scratch crypto substrate.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.hpp"
#include "crypto/aes128.hpp"
#include "crypto/bigint.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/dh.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha256.hpp"

namespace mic::crypto {
namespace {

std::string to_hex(std::span<const std::uint8_t> bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  for (const auto b : bytes) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xf]);
  }
  return out;
}

std::vector<std::uint8_t> from_hex(std::string_view hex) {
  std::vector<std::uint8_t> out;
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
    const auto nibble = [](char c) -> std::uint8_t {
      if (c >= '0' && c <= '9') return static_cast<std::uint8_t>(c - '0');
      return static_cast<std::uint8_t>(c - 'a' + 10);
    };
    out.push_back(
        static_cast<std::uint8_t>((nibble(hex[i]) << 4) | nibble(hex[i + 1])));
  }
  return out;
}

std::span<const std::uint8_t> bytes_of(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

// --- SHA-256 (FIPS 180-4 vectors) -------------------------------------------

TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(Sha256::hash({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(Sha256::hash(bytes_of("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(to_hex(Sha256::hash(bytes_of(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 ctx;
  const std::vector<std::uint8_t> chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  EXPECT_EQ(to_hex(ctx.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg = "the quick brown fox jumps over the lazy dog";
  Sha256 ctx;
  for (const char c : msg) {
    const auto byte = static_cast<std::uint8_t>(c);
    ctx.update({&byte, 1});
  }
  EXPECT_EQ(to_hex(ctx.finish()), to_hex(Sha256::hash(bytes_of(msg))));
}

// --- HMAC-SHA256 (RFC 4231 vectors) ------------------------------------------

TEST(Hmac, Rfc4231Case1) {
  const std::vector<std::uint8_t> key(20, 0x0b);
  EXPECT_EQ(to_hex(hmac_sha256(key, bytes_of("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(to_hex(hmac_sha256(bytes_of("Jefe"),
                               bytes_of("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, LongKeyIsHashedFirst) {
  // RFC 4231 case 6: 131-byte key.
  const std::vector<std::uint8_t> key(131, 0xaa);
  EXPECT_EQ(to_hex(hmac_sha256(
                key, bytes_of("Test Using Larger Than Block-Size Key - "
                              "Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Kdf, DeterministicAndLengthExact) {
  const auto a = kdf_sha256(bytes_of("secret"), bytes_of("label"), 80);
  const auto b = kdf_sha256(bytes_of("secret"), bytes_of("label"), 80);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 80u);
  const auto c = kdf_sha256(bytes_of("secret"), bytes_of("other"), 80);
  EXPECT_NE(a, c);
}

// --- ChaCha20 (RFC 8439 vectors) ----------------------------------------------

TEST(ChaCha20, Rfc8439Section242) {
  ChaCha20::Key key{};
  for (int i = 0; i < 32; ++i) key[static_cast<std::size_t>(i)] =
      static_cast<std::uint8_t>(i);
  ChaCha20::Nonce nonce{0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                        0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  std::vector<std::uint8_t> data(plaintext.begin(), plaintext.end());
  ChaCha20::crypt(key, nonce, data, /*initial_counter=*/1);
  EXPECT_EQ(
      to_hex(data),
      "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0bf91b"
      "65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d807ca0dbf"
      "500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab77937365af90bbf74a3"
      "5be6b40b8eedf2785e42874d");
}

TEST(ChaCha20, EncryptDecryptRoundTrip) {
  ChaCha20::Key key{};
  key[0] = 0x42;
  ChaCha20::Nonce nonce{};
  std::vector<std::uint8_t> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  auto original = data;
  ChaCha20::crypt(key, nonce, data);
  EXPECT_NE(data, original);
  ChaCha20::crypt(key, nonce, data);
  EXPECT_EQ(data, original);
}

TEST(ChaCha20, StreamingMatchesOneShot) {
  ChaCha20::Key key{};
  key[5] = 0x99;
  ChaCha20::Nonce nonce{};
  std::vector<std::uint8_t> one_shot(300, 0xab);
  std::vector<std::uint8_t> streamed = one_shot;
  ChaCha20::crypt(key, nonce, one_shot);
  ChaCha20 cipher(key, nonce);
  cipher.apply(std::span(streamed).subspan(0, 100));
  cipher.apply(std::span(streamed).subspan(100, 130));
  cipher.apply(std::span(streamed).subspan(230));
  EXPECT_EQ(one_shot, streamed);
}

// --- AES-128 (FIPS 197 / SP 800-38A vectors) -------------------------------------

TEST(Aes128, Fips197Block) {
  Aes128::Key key{};
  Aes128::Block plaintext{};
  for (int i = 0; i < 16; ++i) {
    key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
    plaintext[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(i * 0x11);
  }
  const Aes128 cipher(key);
  EXPECT_EQ(to_hex(cipher.encrypt_block(plaintext)),
            "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes128, Sp80038aCtr) {
  const auto key_bytes = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  Aes128::Key key{};
  std::copy(key_bytes.begin(), key_bytes.end(), key.begin());
  const auto iv_bytes = from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  Aes128::Block iv{};
  std::copy(iv_bytes.begin(), iv_bytes.end(), iv.begin());

  auto data = from_hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51");
  aes128_ctr(key, iv, data);
  EXPECT_EQ(to_hex(data),
            "874d6191b620e3261bef6864990db6ce"
            "9806f66b7970fdff8617187bb9fffdff");
}

TEST(Aes128, CtrRoundTrip) {
  Aes128::Key key{};
  key[3] = 7;
  Aes128::Block iv{};
  std::vector<std::uint8_t> data(123, 0x5c);
  const auto original = data;
  aes128_ctr(key, iv, data);
  aes128_ctr(key, iv, data);
  EXPECT_EQ(data, original);
}

// --- Uint2048 / Montgomery ---------------------------------------------------------

TEST(Uint2048, HexRoundTrip) {
  const auto v = Uint2048::from_hex("deadbeefcafebabe1234567890");
  EXPECT_EQ(v.bit_length(), 104u);
  const auto bytes = v.to_bytes_be();
  EXPECT_EQ(Uint2048::from_bytes_be(bytes), v);
}

TEST(Uint2048, AddSubInverse) {
  Rng rng(33);
  for (int trial = 0; trial < 20; ++trial) {
    Uint2048 a, b;
    for (std::size_t i = 0; i < 16; ++i) {
      a.set_limb(i, rng.next());
      b.set_limb(i, rng.next());
    }
    Uint2048 sum = a;
    EXPECT_EQ(sum.add_in_place(b), 0u);
    EXPECT_EQ(sum.sub_in_place(b), 0u);
    EXPECT_EQ(sum, a);
  }
}

TEST(Uint2048, CompareOrdering) {
  const auto small = Uint2048::from_u64(5);
  const auto big = Uint2048::from_hex("ffffffffffffffffff");
  EXPECT_LT(small.compare(big), 0);
  EXPECT_GT(big.compare(small), 0);
  EXPECT_EQ(small.compare(Uint2048::from_u64(5)), 0);
}

TEST(Uint2048, Shl1) {
  auto v = Uint2048::from_u64(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v.shl1_in_place(), 0u);
  EXPECT_TRUE(v.get_bit(100));
  EXPECT_EQ(v.bit_length(), 101u);
}

TEST(Montgomery, ModexpSmallCases) {
  const MontgomeryCtx ctx(dh_group_14().prime());
  EXPECT_EQ(ctx.modexp(Uint2048::from_u64(2), Uint2048::from_u64(1)),
            Uint2048::from_u64(2));
  EXPECT_EQ(ctx.modexp(Uint2048::from_u64(2), Uint2048::from_u64(10)),
            Uint2048::from_u64(1024));
  EXPECT_EQ(ctx.modexp(Uint2048::from_u64(3), Uint2048::from_u64(0)),
            Uint2048::from_u64(1));
}

TEST(Montgomery, MulMatchesExp) {
  const MontgomeryCtx ctx(dh_group_14().prime());
  // 2^a * 2^b == 2^(a+b)
  const auto x = ctx.modexp(Uint2048::from_u64(2), Uint2048::from_u64(100));
  const auto y = ctx.modexp(Uint2048::from_u64(2), Uint2048::from_u64(155));
  const auto prod = ctx.from_mont(ctx.mont_mul(ctx.to_mont(x), ctx.to_mont(y)));
  EXPECT_EQ(prod, ctx.modexp(Uint2048::from_u64(2), Uint2048::from_u64(255)));
}

TEST(Dh, SharedSecretAgrees) {
  const auto& group = dh_group_14();
  Rng rng(55);
  const auto a = group.sample_private_key(rng);
  const auto b = group.sample_private_key(rng);
  const auto pub_a = group.public_key(a);
  const auto pub_b = group.public_key(b);
  const auto shared_ab = group.shared_secret(a, pub_b);
  const auto shared_ba = group.shared_secret(b, pub_a);
  EXPECT_EQ(shared_ab, shared_ba);
  EXPECT_EQ(group.derive_key(shared_ab, "x"), group.derive_key(shared_ba, "x"));
  EXPECT_NE(group.derive_key(shared_ab, "x"), group.derive_key(shared_ab, "y"));
}

TEST(Dh, DistinctKeysDistinctSecrets) {
  const auto& group = dh_group_14();
  Rng rng(77);
  const auto a = group.sample_private_key(rng);
  const auto b = group.sample_private_key(rng);
  const auto c = group.sample_private_key(rng);
  const auto pub_c = group.public_key(c);
  EXPECT_NE(group.shared_secret(a, pub_c), group.shared_secret(b, pub_c));
}


// --- RSA ------------------------------------------------------------------------

TEST(MillerRabin, KnownPrimesAndComposites) {
  Rng rng(42);
  EXPECT_TRUE(is_probable_prime(Uint2048::from_u64(2), rng));
  EXPECT_TRUE(is_probable_prime(Uint2048::from_u64(97), rng));
  EXPECT_TRUE(is_probable_prime(Uint2048::from_u64(2147483647), rng));  // M31
  // M89 = 2^89 - 1 is prime.
  Uint2048 m89 = Uint2048::from_u64(1);
  for (int i = 0; i < 89; ++i) m89.shl1_in_place();
  m89.sub_in_place(Uint2048::from_u64(1));
  EXPECT_TRUE(is_probable_prime(m89, rng));

  EXPECT_FALSE(is_probable_prime(Uint2048::from_u64(1), rng));
  EXPECT_FALSE(is_probable_prime(Uint2048::from_u64(561), rng));   // Carmichael
  EXPECT_FALSE(is_probable_prime(Uint2048::from_u64(41041), rng)); // Carmichael
  EXPECT_FALSE(is_probable_prime(Uint2048::from_u64(1000000), rng));
}

TEST(MillerRabin, GeneratedPrimesHaveRequestedSize) {
  Rng rng(7);
  for (const int bits : {64, 128, 256}) {
    const Uint2048 p = generate_prime(bits, rng);
    EXPECT_EQ(p.bit_length(), static_cast<std::size_t>(bits));
    EXPECT_TRUE(p.get_bit(0));  // odd
  }
}

TEST(Rsa, EncryptDecryptRoundTrip) {
  Rng rng(99);
  const RsaKeyPair keys = RsaKeyPair::generate(512, rng);
  EXPECT_EQ(keys.pub.n.bit_length(), 512u);

  const std::string msg = "attack at dawn";
  const auto ciphertext = rsa_encrypt(
      keys.pub, {reinterpret_cast<const std::uint8_t*>(msg.data()),
                 msg.size()},
      rng);
  EXPECT_EQ(ciphertext.size(), 64u);  // modulus bytes

  const auto plaintext = rsa_decrypt(keys, ciphertext);
  ASSERT_TRUE(plaintext.has_value());
  EXPECT_EQ(std::string(plaintext->begin(), plaintext->end()), msg);
}

TEST(Rsa, RawOpsAreInverses) {
  Rng rng(123);
  const RsaKeyPair keys = RsaKeyPair::generate(512, rng);
  const Uint2048 m = Uint2048::from_u64(0xDEADBEEFCAFEULL);
  const Uint2048 c = rsa_public_op(keys.pub, m);
  EXPECT_FALSE(c == m);
  EXPECT_EQ(rsa_private_op(keys, c), m);
  // Signature direction: private then public.
  const Uint2048 sig = rsa_private_op(keys, m);
  EXPECT_EQ(rsa_public_op(keys.pub, sig), m);
}

TEST(Rsa, WrongKeyFailsCleanly) {
  Rng rng(321);
  const RsaKeyPair alice = RsaKeyPair::generate(512, rng);
  const RsaKeyPair mallory = RsaKeyPair::generate(512, rng);
  const std::vector<std::uint8_t> msg{'s', 'e', 'c', 'r', 'e', 't'};
  const auto ciphertext = rsa_encrypt(alice.pub, msg, rng);
  const auto wrong = rsa_decrypt(mallory, ciphertext);
  // Padding check rejects (overwhelmingly likely), or yields garbage.
  if (wrong.has_value()) {
    EXPECT_NE(*wrong, msg);
  }
}

TEST(Rsa, RandomizedPaddingVariesCiphertext) {
  Rng rng(555);
  const RsaKeyPair keys = RsaKeyPair::generate(512, rng);
  const std::vector<std::uint8_t> msg{'x'};
  const auto c1 = rsa_encrypt(keys.pub, msg, rng);
  const auto c2 = rsa_encrypt(keys.pub, msg, rng);
  EXPECT_NE(c1, c2);  // semantic security needs randomized padding
}

}  // namespace
}  // namespace mic::crypto
