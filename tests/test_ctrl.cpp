// Tests for the controller framework and the proactive L3 routing app:
// rule coverage, CF tagging, ECMP via SELECT groups, southbound latency,
// packet-in subscription.
#include <gtest/gtest.h>

#include <set>

#include "core/fabric.hpp"
#include "core/mic_client.hpp"
#include "ctrl/l3_routing.hpp"
#include "transport/apps.hpp"

namespace mic::ctrl {
namespace {

using core::Fabric;
using core::FabricOptions;

TEST(L3Routing, EveryHostPairConnected) {
  Fabric fabric;
  // All 16x15 ordered pairs deliver (a sweep over the whole rule set).
  int pending = 0;
  for (std::size_t a = 0; a < 4; ++a) {  // a sample of sources
    for (std::size_t b = 0; b < fabric.host_count(); ++b) {
      if (a == b) continue;
      ++pending;
      const net::L4Port port = static_cast<net::L4Port>(6000 + b);
      fabric.host(b).listen(port, [&pending](transport::TcpConnection& conn) {
        conn.set_on_ready([&pending] { --pending; });
      });
      fabric.host(a).connect(fabric.ip(b), port);
    }
  }
  fabric.simulator().run_until();
  EXPECT_EQ(pending, 0);
}

TEST(L3Routing, EcmpSelectGroupsInstalledOnTransit) {
  Fabric fabric;
  // Edge switches have two equal-cost uplinks toward other pods, so their
  // inter-pod transit rules must use SELECT groups.
  const topo::NodeId edge = fabric.fattree().edge_switches()[0];
  const auto& table = fabric.mc().switch_at(edge)->table();
  bool found_select = false;
  for (const auto& rule : table.rules()) {
    for (const auto& action : rule.actions) {
      if (const auto* grp = std::get_if<switchd::GroupAction>(&action)) {
        const auto* group = table.group(grp->group_id);
        ASSERT_NE(group, nullptr);
        if (group->type == switchd::GroupType::kSelect) {
          found_select = true;
          EXPECT_GE(group->buckets.size(), 2u);
        }
      }
    }
  }
  EXPECT_TRUE(found_select);
}

TEST(L3Routing, EcmpSpreadsFlowsByPorts) {
  // Two flows between the same host pair but different ports should (for
  // this seed) take different uplinks -- measure by core-switch traffic.
  Fabric fabric;
  std::uint64_t received = 0;
  for (int i = 0; i < 8; ++i) {
    const net::L4Port port = static_cast<net::L4Port>(6100 + i);
    fabric.host(12).listen(port, [&](transport::TcpConnection& conn) {
      conn.set_on_data(
          [&](const transport::ChunkView& view) { received += view.length; });
    });
    auto& conn = fabric.host(0).connect(fabric.ip(12), port);
    conn.set_on_ready(
        [&conn] { conn.send(transport::Chunk::virtual_bytes(256 * 1024)); });
  }
  fabric.simulator().run_until();
  EXPECT_EQ(received, 8ull * 256 * 1024);

  // More than one core switch forwarded traffic.
  int cores_used = 0;
  for (const topo::NodeId core : fabric.fattree().core_switches()) {
    if (fabric.mc().switch_at(core)->forwarded() > 0) ++cores_used;
  }
  EXPECT_GE(cores_used, 2);
}

TEST(L3Routing, SelectBucketStablePerFlow) {
  net::Packet a;
  a.src = net::Ipv4(10, 0, 0, 2);
  a.dst = net::Ipv4(10, 3, 0, 2);
  a.sport = 12345;
  a.dport = 80;
  const auto bucket1 = switchd::select_bucket(a, 4, 99);
  // Different salts (different switches) decorrelate the choice space.
  std::set<std::size_t> salted;
  for (std::uint64_t salt = 0; salt < 32; ++salt) {
    salted.insert(switchd::select_bucket(a, 4, salt));
  }
  EXPECT_EQ(salted.size(), 4u);
  a.mpls = 0xdeadbeef;  // labels must not re-path a flow
  EXPECT_EQ(switchd::select_bucket(a, 4, 99), bucket1);

  // Different ports usually land elsewhere (not guaranteed per pair, but
  // across many ports the spread must be non-trivial).
  std::set<std::size_t> buckets;
  for (int p = 0; p < 64; ++p) {
    a.sport = static_cast<net::L4Port>(40000 + p);
    buckets.insert(switchd::select_bucket(a, 4, 99));
  }
  EXPECT_EQ(buckets.size(), 4u);
}

TEST(Controller, SouthboundLatencyDelaysInstall) {
  Fabric fabric;
  const topo::NodeId sw = fabric.fattree().core_switches()[0];
  const std::size_t before = fabric.mc().switch_at(sw)->table().rule_count();

  switchd::FlowRule rule;
  rule.priority = 200;
  rule.match.src = net::Ipv4(1, 2, 3, 4);
  rule.cookie = 777;
  fabric.mc().install_rule(sw, rule, /*immediate=*/false);

  // Not yet installed...
  EXPECT_EQ(fabric.mc().switch_at(sw)->table().rule_count(), before);
  fabric.simulator().run_until(fabric.mc().config().southbound_latency / 2);
  EXPECT_EQ(fabric.mc().switch_at(sw)->table().rule_count(), before);
  // ...but installed after the southbound latency.
  fabric.simulator().run_until();
  EXPECT_EQ(fabric.mc().switch_at(sw)->table().rule_count(), before + 1);
  fabric.mc().remove_cookie(sw, 777, /*immediate=*/true);
}

TEST(Controller, PacketInDeliveredAfterLatency) {
  // A bare fabric without routing: the first packet misses and reaches the
  // controller via packet-in.
  FabricOptions options;
  options.install_default_routing = false;
  Fabric fabric(options);
  fabric.mc().subscribe_packet_in();  // default handler logs + drops

  fabric.host(0).connect(fabric.ip(12), 80);  // SYN will miss everywhere
  fabric.simulator().run_until(sim::milliseconds(5));
  std::uint64_t misses = 0;
  for (const topo::NodeId sw : fabric.network().graph().switches()) {
    misses += fabric.mc().switch_at(sw)->table().miss_count();
  }
  EXPECT_GT(misses, 0u);
}

TEST(Controller, IdleChannelsReclaimed) {
  Fabric fabric;
  core::MicServer server(fabric.host(12), 7000, fabric.rng());
  core::MicChannelOptions options;
  options.responder_ip = fabric.ip(12);
  options.responder_port = 7000;
  core::MicChannel channel(fabric.host(0), fabric.mc(), options,
                           fabric.rng());
  fabric.simulator().run_until();
  ASSERT_TRUE(channel.ready());

  channel.release_for_reuse();
  fabric.simulator().run_until();
  ASSERT_TRUE(fabric.mc().channel(channel.id())->idle);

  // Not yet stale.
  fabric.simulator().run_until(fabric.simulator().now() + sim::seconds(1));
  EXPECT_EQ(fabric.mc().reclaim_idle(sim::seconds(10)), 0u);
  EXPECT_EQ(fabric.mc().active_channel_count(), 1u);

  // Stale after the timeout.
  fabric.simulator().run_until(fabric.simulator().now() + sim::seconds(10));
  EXPECT_EQ(fabric.mc().reclaim_idle(sim::seconds(10)), 1u);
  fabric.simulator().run_until();
  EXPECT_EQ(fabric.mc().active_channel_count(), 0u);
  EXPECT_EQ(fabric.mc().registry().active_flow_count(), 0u);
}

TEST(Controller, HostAddressingLookups) {
  Fabric fabric;
  const auto& addressing = fabric.mc().addressing();
  for (std::size_t i = 0; i < fabric.host_count(); ++i) {
    const topo::NodeId node = fabric.host_node(i);
    EXPECT_EQ(addressing.ip_of(node), fabric.ip(i));
    EXPECT_EQ(addressing.host_of(fabric.ip(i)), node);
  }
  EXPECT_EQ(addressing.host_of(net::Ipv4(8, 8, 8, 8)), topo::kInvalidNode);
}

}  // namespace
}  // namespace mic::ctrl
