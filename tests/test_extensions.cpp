// Tests for the extension features: link-failure repair, random loss
// injection, distributed-controller ID-space partitioning (Sec VI-C),
// the client-side channel pool (Sec IV-B1) and rate-based analysis.
#include <gtest/gtest.h>

#include "anonymity/attacks.hpp"
#include "core/collision_audit.hpp"
#include "core/fabric.hpp"
#include "core/mic_client.hpp"
#include "tor/client.hpp"
#include "tor/relay.hpp"

namespace mic {
namespace {

using core::Fabric;
using core::FabricOptions;
using core::MicChannel;
using core::MicChannelOptions;
using core::MicServer;

topo::LinkId link_on_path(const topo::Graph& graph, const topo::Path& path,
                          std::size_t hop) {
  return graph.link_between(path[hop], path[hop + 1]);
}

struct Bed {
  explicit Bed(FabricOptions options = {}) : fabric(options) {
    server = std::make_unique<MicServer>(fabric.host(12), 7000, fabric.rng());
    server->set_on_channel([this](core::MicServerChannel& channel) {
      channel.set_on_data([this](const transport::ChunkView& view) {
        received += view.length;
      });
    });
  }

  MicChannelOptions options() {
    MicChannelOptions o;
    o.responder_ip = fabric.ip(12);
    o.responder_port = 7000;
    return o;
  }

  Fabric fabric;
  std::unique_ptr<MicServer> server;
  std::uint64_t received = 0;
};

// --- link failure + repair ----------------------------------------------------

TEST(LinkFailure, DownLinkDropsPackets) {
  Bed bed;
  // Fail host 0's access link; its TCP SYN goes nowhere.
  const auto host0 = bed.fabric.host_node(0);
  const auto access =
      bed.fabric.network().graph().neighbors(host0)[0].link;
  bed.fabric.network().set_link_up(access, false);
  EXPECT_FALSE(bed.fabric.network().link_up(access));

  auto& conn = bed.fabric.host(0).connect(bed.fabric.ip(12), 7000);
  bed.fabric.simulator().run_until(sim::milliseconds(500));
  EXPECT_NE(conn.state(), transport::TcpConnection::State::kEstablished);
  EXPECT_GT(bed.fabric.network().total_drops(), 0u);

  bed.fabric.network().set_link_up(access, true);
  bed.fabric.simulator().run_until(sim::seconds(20));
  // The SYN retransmission eventually gets through.
  EXPECT_EQ(conn.state(), transport::TcpConnection::State::kEstablished);
}

TEST(LinkFailure, McRepairsChannelMidTransfer) {
  Bed bed;
  MicChannel channel(bed.fabric.host(0), bed.fabric.mc(), bed.options(),
                     bed.fabric.rng());
  bed.fabric.simulator().run_until();
  ASSERT_TRUE(channel.ready());

  const auto* state = bed.fabric.mc().channel(channel.id());
  const auto& plan = state->flows[0];
  // A fabric-interior link in the middle of the path (never an access
  // link).
  const topo::LinkId victim =
      link_on_path(bed.fabric.network().graph(), plan.path,
                   plan.path.size() / 2);

  constexpr std::uint64_t kBytes = 2 * 1024 * 1024;
  channel.send(transport::Chunk::virtual_bytes(kBytes));
  // Let the transfer get going, then yank the link and repair.
  bed.fabric.simulator().run_until(bed.fabric.simulator().now() +
                                   sim::milliseconds(4));
  bed.fabric.network().set_link_up(victim, false);
  const auto outcome = bed.fabric.mc().fail_link(victim);
  EXPECT_EQ(outcome.repaired, 1u);
  EXPECT_EQ(outcome.lost, 0u);

  bed.fabric.simulator().run_until();
  EXPECT_EQ(bed.received, kBytes);

  // The repaired route avoids the dead link and the audit stays clean.
  const auto& new_plan = bed.fabric.mc().channel(channel.id())->flows[0];
  for (std::size_t i = 0; i + 1 < new_plan.path.size(); ++i) {
    EXPECT_NE(link_on_path(bed.fabric.network().graph(), new_plan.path, i),
              victim);
  }
  EXPECT_TRUE(core::audit_collisions(bed.fabric.mc()).ok);
}

TEST(LinkFailure, EndpointsSurviveRepair) {
  // The transport connection must not notice the migration: entry and
  // presented addresses stay fixed.
  Bed bed;
  MicChannel channel(bed.fabric.host(0), bed.fabric.mc(), bed.options(),
                     bed.fabric.rng());
  bed.fabric.simulator().run_until();
  const auto before = bed.fabric.mc().channel(channel.id())->flows[0];

  const topo::LinkId victim = link_on_path(
      bed.fabric.network().graph(), before.path, before.path.size() / 2);
  bed.fabric.network().set_link_up(victim, false);
  bed.fabric.mc().fail_link(victim);
  bed.fabric.simulator().run_until();

  const auto& after = bed.fabric.mc().channel(channel.id())->flows[0];
  EXPECT_EQ(after.flow_id, before.flow_id);
  EXPECT_EQ(after.forward.front().dst, before.forward.front().dst);     // entry
  EXPECT_EQ(after.forward.front().dport, before.forward.front().dport);
  EXPECT_EQ(after.forward.back().src, before.forward.back().src);       // presented
  EXPECT_EQ(after.forward.back().sport, before.forward.back().sport);
}

TEST(LinkFailure, UnrepairableChannelIsTornDown) {
  Bed bed;
  MicChannel channel(bed.fabric.host(0), bed.fabric.mc(), bed.options(),
                     bed.fabric.rng());
  bed.fabric.simulator().run_until();
  ASSERT_TRUE(channel.ready());

  // The responder's access link is on every possible path.
  const auto resp = bed.fabric.host_node(12);
  const auto access = bed.fabric.network().graph().neighbors(resp)[0].link;
  bed.fabric.network().set_link_up(access, false);
  const auto outcome = bed.fabric.mc().fail_link(access);
  EXPECT_EQ(outcome.repaired, 0u);
  EXPECT_EQ(outcome.lost, 1u);
  EXPECT_EQ(bed.fabric.mc().channel(channel.id()), nullptr);
  EXPECT_EQ(bed.fabric.mc().registry().active_flow_count(), 0u);
}

TEST(LinkFailure, NewChannelsAvoidFailedLinks) {
  Bed bed;
  // Fail one core switch's links entirely.
  const topo::NodeId core = bed.fabric.fattree().core_switches()[0];
  for (const auto& adj : bed.fabric.network().graph().neighbors(core)) {
    bed.fabric.network().set_link_up(adj.link, false);
    bed.fabric.mc().fail_link(adj.link);
  }
  // Channels still establish and deliver, never touching the dead core.
  for (int i = 0; i < 5; ++i) {
    MicChannel channel(bed.fabric.host(static_cast<std::size_t>(i)),
                       bed.fabric.mc(), bed.options(), bed.fabric.rng());
    bed.fabric.simulator().run_until();
    ASSERT_TRUE(channel.ready()) << channel.error();
    const auto& plan = bed.fabric.mc().channel(channel.id())->flows[0];
    for (const topo::NodeId node : plan.path) EXPECT_NE(node, core);
  }
}

TEST(LinkFailure, CommonFlowsRerouteAroundFailure) {
  // Fast failover for the default routing: a bulk TCP flow survives the
  // loss of one fabric link mid-transfer once the MC reroutes.
  Bed bed;
  constexpr std::uint64_t kBytes = 4 * 1024 * 1024;
  std::uint64_t received = 0;
  bed.fabric.host(12).listen(6000, [&](transport::TcpConnection& conn) {
    conn.set_on_data(
        [&](const transport::ChunkView& view) { received += view.length; });
  });
  auto& conn = bed.fabric.host(0).connect(bed.fabric.ip(12), 6000);
  conn.set_on_ready([&] { conn.send(transport::Chunk::virtual_bytes(kBytes)); });

  // Let it ramp, then find a busy fabric-interior link and cut it.
  bed.fabric.simulator().run_until(bed.fabric.simulator().now() +
                                   sim::milliseconds(5));
  const auto& graph = bed.fabric.network().graph();
  topo::LinkId victim = topo::kInvalidLink;
  for (const topo::NodeId sw : graph.switches()) {
    for (const auto& adj : graph.neighbors(sw)) {
      if (!graph.is_switch(adj.peer) || sw > adj.peer) continue;  // interior, once
      if (bed.fabric.network().stats(adj.link, 0).packets > 100) {
        victim = adj.link;
        break;
      }
    }
    if (victim != topo::kInvalidLink) break;
  }
  ASSERT_NE(victim, topo::kInvalidLink) << "no busy interior link found";

  bed.fabric.network().set_link_up(victim, false);
  bed.fabric.mc().fail_link(victim);
  bed.fabric.simulator().run_until();
  EXPECT_EQ(received, kBytes);
}

TEST(LinkFailure, TorCircuitDiesWithItsRelay) {
  // The architectural contrast: an overlay circuit cannot be repaired by
  // the network -- when a relay's access link dies, the circuit is gone
  // and the endpoints' TCP eventually aborts.  (MIC channels survive the
  // equivalent failure; see McRepairsChannelMidTransfer.)
  Fabric fabric;
  std::vector<std::unique_ptr<tor::TorRelay>> relays;
  std::vector<tor::RelayAddr> path;
  for (int i = 0; i < 2; ++i) {
    const std::size_t host = 8 + static_cast<std::size_t>(i);
    relays.push_back(std::make_unique<tor::TorRelay>(fabric.host(host), 9001,
                                                     fabric.rng()));
    path.push_back({fabric.ip(host), 9001});
  }
  std::uint64_t received = 0;
  fabric.host(15).listen(5000, [&](transport::TcpConnection& conn) {
    conn.set_on_data(
        [&](const transport::ChunkView& view) { received += view.length; });
  });
  tor::TorClient client(fabric.host(0), path, fabric.ip(15), 5000,
                        fabric.rng());
  client.send(transport::Chunk::virtual_bytes(8 * 1024 * 1024));
  // Telescoping + per-cell relay scheduling makes the circuit slow to
  // come up; give the transfer time to flow before the failure.
  fabric.simulator().run_until(fabric.simulator().now() +
                               sim::milliseconds(60));
  const std::uint64_t before = received;
  EXPECT_GT(before, 0u);

  // Kill the first relay's access link.
  const auto relay_node = fabric.host_node(8);
  fabric.network().set_link_up(
      fabric.network().graph().neighbors(relay_node)[0].link, false);
  fabric.simulator().run_until();  // terminates: TCP gives up after max RTOs

  EXPECT_LT(received, 8ull * 1024 * 1024);  // the transfer never completes
}

// --- random loss ---------------------------------------------------------------

TEST(RandomLoss, TcpSurvivesHalfPercentLoss) {
  FabricOptions options;
  options.link.random_drop_probability = 0.005;
  Fabric fabric(options);
  std::uint64_t received = 0;
  fabric.host(12).listen(6000, [&](transport::TcpConnection& conn) {
    conn.set_on_data(
        [&](const transport::ChunkView& view) { received += view.length; });
  });
  auto& conn = fabric.host(0).connect(fabric.ip(12), 6000);
  conn.set_on_ready(
      [&] { conn.send(transport::Chunk::virtual_bytes(1024 * 1024)); });
  fabric.simulator().run_until();
  EXPECT_EQ(received, 1024u * 1024u);
  EXPECT_GT(conn.retransmissions(), 0u);
}

TEST(RandomLoss, MimicChannelSurvivesLoss) {
  FabricOptions options;
  options.link.random_drop_probability = 0.003;
  Bed bed(options);
  auto channel_options = bed.options();
  channel_options.flow_count = 2;
  MicChannel channel(bed.fabric.host(0), bed.fabric.mc(), channel_options,
                     bed.fabric.rng());
  channel.send(transport::Chunk::virtual_bytes(1024 * 1024));
  bed.fabric.simulator().run_until();
  EXPECT_EQ(bed.received, 1024u * 1024u);
}

// --- distributed controllers (Sec VI-C) -----------------------------------------

TEST(DistributedControllers, DisjointIdSpacesStayCollisionFree) {
  FabricOptions options;
  options.mic.shared_secret_seed = 0xD15EA5E;
  options.mic.flow_ids = {1, 1000};
  options.mic.instance_id = 0;
  Fabric fabric(options);

  core::MicConfig config2;
  config2.shared_secret_seed = 0xD15EA5E;  // same deployment secrets
  config2.flow_ids = {1001, 1000};         // disjoint ID slice
  config2.instance_id = 1;
  core::MimicController mc2(fabric.network(), fabric.mc().addressing(),
                            /*seed=*/999, config2);

  // The deployment-wide secrets really are shared.
  for (const topo::NodeId sw : fabric.network().graph().switches()) {
    EXPECT_EQ(fabric.mc().registry().s_id(sw), mc2.registry().s_id(sw));
  }
  EXPECT_EQ(fabric.mc().registry().c_id(), mc2.registry().c_id());

  // Each controller establishes channels between disjoint host pairs.
  std::vector<core::ChannelId> ids1, ids2;
  for (int i = 0; i < 6; ++i) {
    core::EstablishRequest request;
    request.initiator_ip = fabric.ip(static_cast<std::size_t>(i));
    request.responder_ip = fabric.ip(static_cast<std::size_t>(8 + i));
    request.responder_port = 7000;
    request.initiator_sports = {static_cast<net::L4Port>(41000 + i)};
    auto& mc = (i % 2 == 0) ? fabric.mc() : mc2;
    const auto result = mc.establish(request);
    ASSERT_TRUE(result.ok) << result.error;
    (i % 2 == 0 ? ids1 : ids2).push_back(result.channel);
  }

  // Channel IDs (= rule cookies) never collide across instances.
  for (const auto a : ids1) {
    for (const auto b : ids2) EXPECT_NE(a, b);
  }

  // Global audit: no duplicate (priority, match) on any switch, and every
  // MN rewrite hashes to a flow ID active in exactly one controller.
  auto& reg1 = fabric.mc().registry();
  auto& reg2 = mc2.registry();
  for (const topo::NodeId sw : fabric.network().graph().switches()) {
    const auto& rules = fabric.mc().switch_at(sw)->table().rules();
    for (std::size_t i = 0; i < rules.size(); ++i) {
      for (std::size_t j = i + 1; j < rules.size(); ++j) {
        EXPECT_FALSE(rules[i].priority == rules[j].priority &&
                     rules[i].match == rules[j].match)
            << "duplicate rule on switch " << sw;
      }
      if (rules[i].priority == ctrl::kPriorityMFlow && rules[i].match.mpls) {
        const auto label = *rules[i].match.mpls;
        const auto cls = reg1.class_of_label(label);
        const topo::NodeId generator = reg1.switch_of_class(cls);
        ASSERT_NE(generator, topo::kInvalidNode);
        const core::MTuple tuple{*rules[i].match.src, *rules[i].match.dst,
                                 *rules[i].match.sport, *rules[i].match.dport,
                                 label};
        const auto flow = reg1.flow_id_of(generator, tuple);
        EXPECT_TRUE(reg1.flow_id_active(flow) ^ reg2.flow_id_active(flow))
            << "flow " << flow << " active in neither or both controllers";
      }
    }
  }
}

TEST(DistributedControllers, RangeExhaustionDies) {
  core::MagaRegistry registry{Rng(1), core::FlowIdRange{10, 3}};
  EXPECT_EQ(registry.allocate_flow_id(), 10);
  EXPECT_EQ(registry.allocate_flow_id(), 11);
  EXPECT_EQ(registry.allocate_flow_id(), 12);
  EXPECT_DEATH(registry.allocate_flow_id(), "exhausted");
}

// --- channel pool ----------------------------------------------------------------

TEST(ChannelPool, ReusesIdleMatchingChannel) {
  Bed bed;
  core::MicChannelPool pool(bed.fabric.host(0), bed.fabric.mc(),
                            bed.fabric.rng());
  MicChannel& first = pool.acquire(bed.options());
  bed.fabric.simulator().run_until();
  ASSERT_TRUE(first.ready());
  const core::ChannelId id = first.id();
  const auto requests_before = bed.fabric.mc().requests_handled();

  pool.release(first);
  bed.fabric.simulator().run_until();
  EXPECT_EQ(pool.idle_count(), 1u);
  EXPECT_TRUE(bed.fabric.mc().channel(id)->idle);

  MicChannel& second = pool.acquire(bed.options());
  bed.fabric.simulator().run_until();
  EXPECT_EQ(&second, &first);                       // same channel object
  EXPECT_EQ(second.id(), id);                       // same mimic channel
  EXPECT_EQ(bed.fabric.mc().requests_handled(), requests_before);  // no new request
  EXPECT_FALSE(bed.fabric.mc().channel(id)->idle);
}

TEST(ChannelPool, DifferentOptionsGetDifferentChannels) {
  Bed bed;
  core::MicChannelPool pool(bed.fabric.host(0), bed.fabric.mc(),
                            bed.fabric.rng());
  MicChannel& plain = pool.acquire(bed.options());
  bed.fabric.simulator().run_until();
  pool.release(plain);
  bed.fabric.simulator().run_until();

  auto options = bed.options();
  options.flow_count = 3;  // different shape: no reuse
  MicChannel& striped = pool.acquire(options);
  EXPECT_NE(&striped, &plain);
  EXPECT_EQ(pool.size(), 2u);
}

TEST(ChannelPool, DrainTearsDownEverything) {
  Bed bed;
  core::MicChannelPool pool(bed.fabric.host(0), bed.fabric.mc(),
                            bed.fabric.rng());
  pool.acquire(bed.options());
  bed.fabric.simulator().run_until();
  EXPECT_EQ(bed.fabric.mc().active_channel_count(), 1u);
  pool.drain();
  bed.fabric.simulator().run_until();
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(bed.fabric.mc().active_channel_count(), 0u);
}

// --- rate-based analysis ------------------------------------------------------------

TEST(RateAnalysis, MultipleMFlowsHideChannelRate) {
  auto observed_rate = [](int flows) {
    Bed bed;
    auto options = bed.options();
    options.flow_count = flows;
    MicChannel channel(bed.fabric.host(0), bed.fabric.mc(), options,
                       bed.fabric.rng());
    bed.fabric.simulator().run_until();
    const auto& plan = bed.fabric.mc().channel(channel.id())->flows[0];
    anonymity::Observer observer;
    observer.compromise_switch(bed.fabric.network(),
                               plan.path[plan.mn_positions[1]]);
    channel.send(transport::Chunk::virtual_bytes(1024 * 1024));
    bed.fabric.simulator().run_until();
    return anonymity::observed_rate_bps(observer.ingress(),
                                        plan.forward[1].src,
                                        plan.forward[1].dst);
  };

  const double single = observed_rate(1);
  const double striped = observed_rate(4);
  EXPECT_GT(single, 0.5e9);          // one m-flow shows ~the channel rate
  EXPECT_LT(striped, single * 0.6);  // striping hides it
  EXPECT_GT(striped, 0.0);
}

}  // namespace
}  // namespace mic
