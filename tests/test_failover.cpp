// Warm-standby controller failover (src/ctrl/standby.hpp): journal
// replication over the commit stream, missed-heartbeat takeover with the
// ControllerDirectory repointing live clients, id-safety across a chain of
// failovers, stale-replica takeovers that sweep and re-establish, zombie
// ex-primary fencing (RC-2), and the seeded failover chaos soak across all
// four primary-kill modes -- bit-reproducible, including under
// MIC_SIM_SHARDS=4.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/audit_registry.hpp"
#include "core/fabric.hpp"
#include "core/fault_injector.hpp"
#include "core/journal_store.hpp"
#include "core/mic_client.hpp"
#include "ctrl/standby.hpp"
#include "net/trace.hpp"

namespace mic {
namespace {

using core::ChannelId;
using core::ControllerDirectory;
using core::Fabric;
using core::FabricOptions;
using core::FaultInjector;
using core::FaultInjectorOptions;
using core::FsyncPolicy;
using core::JournalStore;
using core::JournalStoreOptions;
using core::MicChannel;
using core::MicChannelOptions;
using core::MicServer;
using core::SimBackend;
using ctrl::StandbyController;
using ctrl::StandbyOptions;

/// Primary + durable store + directory + warm standby + a responder, the
/// way a deployment would wire them.  Clients resolve the MC through the
/// directory, so they survive the failover without reconfiguration.
struct FailoverBed {
  explicit FailoverBed(FabricOptions fo = {},
                       StandbyOptions so = {},
                       FsyncPolicy policy = FsyncPolicy::kEveryRecord)
      : fabric(fo),
        store(backend, store_options(policy)),
        directory(fabric.mc()),
        standby(fabric.mc(), directory, so) {
    fabric.mc().journal().attach_store(&store);
    standby.start();
    server = std::make_unique<MicServer>(fabric.host(12), 7000, fabric.rng());
    server->set_on_channel([this](core::MicServerChannel& channel) {
      channel.set_on_data([this](const transport::ChunkView& view) {
        received += view.length;
      });
    });
  }

  static JournalStoreOptions store_options(FsyncPolicy policy) {
    JournalStoreOptions o;
    o.fsync_policy = policy;
    return o;
  }

  MicChannelOptions options() {
    MicChannelOptions o;
    o.responder_ip = fabric.ip(12);
    o.responder_port = 7000;
    // The survival machinery every failover test depends on.
    o.heartbeat_interval = sim::milliseconds(2);
    o.control_timeout = sim::milliseconds(10);
    o.control_retry_limit = 20;
    o.auto_reestablish = true;
    return o;
  }

  std::unique_ptr<MicChannel> client(std::size_t host, MicChannelOptions o) {
    return std::make_unique<MicChannel>(fabric.host(host), directory, o,
                                        fabric.rng());
  }

  void kill_primary() {
    backend.crash();
    fabric.mc().crash();
  }

  void run_for(sim::SimTime dt) {
    fabric.simulator().run_until(fabric.simulator().now() + dt);
  }

  Fabric fabric;
  SimBackend backend;
  JournalStore store;
  ControllerDirectory directory;
  StandbyController standby;
  std::unique_ptr<MicServer> server;
  std::uint64_t received = 0;
};

StandbyOptions follow_only() {
  StandbyOptions so;
  so.heartbeat_interval = 0;  // never takes over on its own
  return so;
}

// --- replication -------------------------------------------------------------

TEST(StandbyReplication, FollowerMirrorsTheCommittedJournal) {
  FailoverBed bed({}, follow_only());
  auto c1 = bed.client(0, bed.options());
  auto c2 = bed.client(3, bed.options());
  bed.run_for(sim::milliseconds(30));
  ASSERT_TRUE(c1->ready() && c2->ready());

  // Every committed record crossed, after the replication lag, into the
  // standby's replica -- and the replica replays to the primary's image.
  EXPECT_EQ(bed.standby.records_replicated(),
            bed.fabric.mc().journal().records_shipped());
  EXPECT_GE(bed.standby.records_replicated(), 2u);
  const core::JournalImage ours = bed.standby.replica().replay();
  const core::JournalImage theirs = bed.fabric.mc().journal().replay();
  ASSERT_EQ(ours.channels.size(), theirs.channels.size());
  for (const auto& [id, state] : theirs.channels) {
    ASSERT_TRUE(ours.channels.contains(id));
    EXPECT_TRUE(core::structurally_equal(ours.channels.at(id), state));
  }
  EXPECT_EQ(ours.next_channel, theirs.next_channel);
  EXPECT_EQ(ours.next_group, theirs.next_group);

  c1->close();
  c2->close();
  bed.run_for(sim::milliseconds(10));
  // Teardown tombstones replicate too.
  EXPECT_EQ(bed.standby.records_replicated(),
            bed.fabric.mc().journal().records_shipped());
  EXPECT_TRUE(bed.standby.replica().replay().channels.empty());
}

TEST(StandbyReplication, CommitBoundaryGatesShippingAndLapsesSkewTheDisk) {
  // kCommitBoundary store: records wait for the boundary before shipping,
  // and the MC commits at client-visible acks -- so a *ready* channel is
  // always replicated.  An fsync lapse is the undetectable betrayal: the
  // record still ships (the MC was told the bytes are durable), but the
  // primary's own disk forgets it at the next power cut, leaving the disk
  // *behind* the replica -- which is why takeover recovers from the
  // replica, never from the dead primary's storage.
  FailoverBed bed({}, follow_only(), FsyncPolicy::kCommitBoundary);
  auto c1 = bed.client(0, bed.options());
  bed.run_for(sim::milliseconds(30));
  ASSERT_TRUE(c1->ready());
  const std::uint64_t replicated_before = bed.standby.records_replicated();
  EXPECT_GE(replicated_before, 1u);

  bed.backend.lapse_fsyncs(1000);
  auto c2 = bed.client(3, bed.options());
  bed.run_for(sim::milliseconds(30));
  ASSERT_TRUE(c2->ready());
  EXPECT_GT(bed.standby.records_replicated(), replicated_before);
  EXPECT_GT(bed.backend.syncs_lapsed(), 0u);

  bed.backend.crash();
  const core::JournalLoadResult reloaded = bed.store.load();
  EXPECT_LT(reloaded.records.size(),
            static_cast<std::size_t>(bed.standby.records_replicated()));
  EXPECT_EQ(bed.standby.replica().size(),
            bed.fabric.mc().journal().size());
}

TEST(StandbyReplication, DestroyedFollowerDetachesFromThePrimaryStream) {
  // A follower that dies while the primary lives must unhook its commit
  // listener: the primary's next committed record would otherwise call
  // into freed memory (the ASan tier enforces the "freed" part).
  Fabric fabric;
  SimBackend backend;
  JournalStore store(backend);
  fabric.mc().journal().attach_store(&store);
  ControllerDirectory directory(fabric.mc());
  MicServer server(fabric.host(12), 7000, fabric.rng());
  server.set_on_channel([](core::MicServerChannel&) {});
  {
    StandbyController standby(fabric.mc(), directory, follow_only());
    standby.start();
  }
  MicChannelOptions o;
  o.responder_ip = fabric.ip(12);
  o.responder_port = 7000;
  MicChannel c(fabric.host(0), directory, o, fabric.rng());
  fabric.simulator().run_until();
  EXPECT_TRUE(c.ready());
  // The journal still commits and counts shipments; there is simply no
  // listener left to deliver them to.
  EXPECT_GE(fabric.mc().journal().records_shipped(), 1u);
}

// --- takeover ----------------------------------------------------------------

TEST(Failover, MissedHeartbeatsPromoteTheStandby) {
  FailoverBed bed;
  auto c1 = bed.client(0, bed.options());
  auto c2 = bed.client(3, bed.options());
  bed.run_for(sim::milliseconds(30));
  ASSERT_TRUE(c1->ready() && c2->ready());
  const std::uint64_t epoch_before = bed.fabric.mc().journal().epoch();

  bed.kill_primary();
  EXPECT_FALSE(bed.standby.active());
  bed.run_for(sim::milliseconds(30));

  // The probe budget ran out and the standby recovered from its replica:
  // both channels came back without touching a single installed rule.
  ASSERT_TRUE(bed.standby.active());
  EXPECT_GE(bed.standby.probes_missed(), 3u);
  EXPECT_EQ(bed.directory.failovers(), 1u);
  EXPECT_EQ(&bed.directory.current(), &bed.standby.mc());
  const auto& report = bed.standby.takeover_report();
  EXPECT_EQ(report.channels_recovered, 2u);
  EXPECT_EQ(report.channels_kept, 2u);
  EXPECT_EQ(report.channels_lost, 0u);
  EXPECT_GT(bed.standby.mc().journal().epoch(), epoch_before);

  // Clients keep forwarding through the new primary, byte for byte.
  constexpr std::uint64_t kBytes = 64 * 1024;
  c1->send(transport::Chunk::virtual_bytes(kBytes));
  c2->send(transport::Chunk::virtual_bytes(kBytes));
  bed.run_for(sim::milliseconds(50));
  EXPECT_EQ(bed.received, 2 * kBytes);

  // RC-2 (and everything else) is clean on the new primary.
  const audit::RunReport audit = audit::run_all(bed.standby.mc());
  EXPECT_TRUE(audit.ok) << audit.first_violation();
  EXPECT_GT(audit.check("RC-2").metric("journal_epoch"), epoch_before);

  // A fresh establishment lands on the new primary via the directory.
  auto c3 = bed.client(5, bed.options());
  bed.run_for(sim::milliseconds(30));
  ASSERT_TRUE(c3->ready());
  EXPECT_NE(bed.standby.mc().channel(c3->id()), nullptr);

  c1->close();
  c2->close();
  c3->close();
  bed.fabric.simulator().run_until();
  EXPECT_TRUE(bed.fabric.simulator().idle());
}

TEST(Failover, DoubleFailoverNeverReusesIds) {
  // Satellite regression: across a crash chain primary -> standby ->
  // standby-of-standby, no ChannelId (rule cookie) and no SELECT-group id
  // watermark ever goes backwards -- a reused cookie could adopt rules it
  // does not own.
  FailoverBed bed;
  auto c1 = bed.client(0, bed.options());
  auto c2 = bed.client(3, bed.options());
  bed.run_for(sim::milliseconds(30));
  ASSERT_TRUE(c1->ready() && c2->ready());
  std::vector<ChannelId> ids = {c1->id(), c2->id()};
  std::uint64_t group_watermark =
      bed.fabric.mc().journal().replay().next_group;

  bed.kill_primary();
  bed.run_for(sim::milliseconds(30));
  ASSERT_TRUE(bed.standby.active());
  core::MimicController& second = bed.standby.mc();

  auto c3 = bed.client(5, bed.options());
  bed.run_for(sim::milliseconds(30));
  ASSERT_TRUE(c3->ready());
  ids.push_back(c3->id());
  {
    const core::JournalImage image = second.journal().replay();
    EXPECT_GE(image.next_group, group_watermark);
    group_watermark = image.next_group;
  }

  // Second hop of the chain: a fresh standby follows the new primary, the
  // new primary dies too.
  StandbyController next(second, bed.directory, follow_only());
  next.start();
  bed.run_for(sim::milliseconds(5));
  second.crash();
  ASSERT_TRUE(next.take_over("test: second failover"));
  bed.run_for(sim::milliseconds(30));
  EXPECT_EQ(bed.directory.failovers(), 2u);
  EXPECT_GT(next.mc().journal().epoch(), second.journal().epoch() - 1);

  auto c4 = bed.client(9, bed.options());
  bed.run_for(sim::milliseconds(30));
  ASSERT_TRUE(c4->ready());
  ids.push_back(c4->id());
  {
    const core::JournalImage image = next.mc().journal().replay();
    EXPECT_GE(image.next_group, group_watermark);
  }

  // Every id across the whole chain is distinct, and later generations
  // allocate strictly above the earlier watermarks.
  std::vector<ChannelId> sorted = ids;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
  EXPECT_GT(ids[2], ids[1]);
  EXPECT_GT(ids[3], ids[2]);

  const audit::RunReport audit = audit::run_all(next.mc());
  EXPECT_TRUE(audit.ok) << audit.first_violation();

  c1->close();
  c2->close();
  c3->close();
  c4->close();
  bed.fabric.simulator().run_until();
  EXPECT_TRUE(bed.fabric.simulator().idle());
  // `next` owns the chain's final controller and dies before c1-c3:
  // destroy the channels while that controller is still alive, or their
  // destructors resolve mc() through the directory into freed memory.
  c4.reset();
  c3.reset();
  c2.reset();
  c1.reset();
}

TEST(Failover, StaleReplicaSweepsAndClientsReestablish) {
  // Negative test: the replication stream lagged behind the failure.  The
  // standby takes over from a truncated replica; the unexplained channel's
  // rules are swept (reconcile-by-audit, exactly the PR-5 degradation) and
  // its client auto-re-establishes against the new primary.
  FailoverBed bed;
  auto c1 = bed.client(0, bed.options());
  bed.run_for(sim::milliseconds(30));
  auto c2 = bed.client(3, bed.options());
  bed.run_for(sim::milliseconds(30));
  ASSERT_TRUE(c1->ready() && c2->ready());

  bed.standby.drop_replica_tail(1);  // c2's establish never replicated
  bed.kill_primary();
  bed.run_for(sim::milliseconds(60));

  ASSERT_TRUE(bed.standby.active());
  const auto& report = bed.standby.takeover_report();
  EXPECT_EQ(report.channels_recovered, 1u);
  EXPECT_GT(report.orphan_rules_removed, 0u);

  // c2's heartbeat noticed the sweep and rebuilt the channel under a new
  // id on the new primary; both clients deliver.
  ASSERT_TRUE(c2->ready());
  EXPECT_FALSE(c2->failed());
  EXPECT_GE(c2->reestablish_attempts(), 1);
  // The id may legitimately be reused: the watermark record was exactly
  // what the replica lost, and the sweep removed every rule the old cookie
  // owned, so a fresh allocation of it collides with nothing (FD-1/CA-1
  // below would catch it otherwise).
  EXPECT_NE(bed.standby.mc().channel(c2->id()), nullptr);
  constexpr std::uint64_t kBytes = 64 * 1024;
  c1->send(transport::Chunk::virtual_bytes(kBytes));
  c2->send(transport::Chunk::virtual_bytes(kBytes));
  bed.run_for(sim::milliseconds(50));
  EXPECT_EQ(bed.received, 2 * kBytes);

  const audit::RunReport audit = audit::run_all(bed.standby.mc());
  EXPECT_TRUE(audit.ok) << audit.first_violation();

  c1->close();
  c2->close();
  bed.fabric.simulator().run_until();
  EXPECT_TRUE(bed.fabric.simulator().idle());
}

TEST(Failover, ZombieExPrimaryIsFencedOutAndStepsDown) {
  // The partition scenario: the primary is alive but unreachable from the
  // standby, which takes over anyway.  Dual primaries exist for a moment --
  // the fencing epoch guarantees the zombie's next southbound op is refused
  // and forces it to step down, so the fabric only ever obeys one master.
  FailoverBed bed;
  auto c1 = bed.client(0, bed.options());
  bed.run_for(sim::milliseconds(30));
  ASSERT_TRUE(c1->ready());

  bed.standby.set_partitioned(true);
  bed.run_for(sim::milliseconds(30));
  ASSERT_TRUE(bed.standby.active());
  EXPECT_FALSE(bed.fabric.mc().crashed());  // the zombie lives...

  // ...until a link event makes it issue a fenced op: cut a link on the
  // channel's path.  Both controllers hear the port status; the new
  // primary repairs the channel, the zombie's competing repair is refused
  // at every switch and it deposes itself.
  const auto& plan = bed.standby.mc().channel(c1->id())->flows[0];
  const topo::LinkId victim = bed.fabric.network().graph().link_between(
      plan.path[plan.path.size() / 2], plan.path[plan.path.size() / 2 + 1]);
  bed.fabric.network().set_link_up(victim, false);
  bed.run_for(sim::milliseconds(30));

  EXPECT_TRUE(bed.fabric.mc().deposed() || bed.fabric.mc().crashed());
  EXPECT_GT(bed.fabric.mc().fenced_ops(), 0u);
  bed.run_for(sim::milliseconds(5));
  EXPECT_TRUE(bed.fabric.mc().crashed());  // the deferred self-crash landed

  bed.fabric.network().set_link_up(victim, true);
  bed.run_for(sim::milliseconds(30));
  ASSERT_TRUE(c1->ready());
  constexpr std::uint64_t kBytes = 64 * 1024;
  c1->send(transport::Chunk::virtual_bytes(kBytes));
  bed.run_for(sim::milliseconds(50));
  EXPECT_EQ(bed.received, kBytes);

  // RC-2 on the survivor: journal and fence epochs agree, no switch obeys
  // a higher generation, and the zombie's refusals are visible.
  const audit::RunReport audit = audit::run_all(bed.standby.mc());
  EXPECT_TRUE(audit.ok) << audit.first_violation();
  EXPECT_GT(audit.check("RC-2").metric("stale_ops_rejected"), 0u);

  c1->close();
  bed.fabric.simulator().run_until();
  EXPECT_TRUE(bed.fabric.simulator().idle());
}

// --- failover chaos soak ------------------------------------------------------

struct FailoverOutcome {
  std::uint64_t received = 0;
  std::size_t alive = 0;
  std::size_t kills = 0;
  std::uint64_t failovers = 0;
  std::uint64_t replicated = 0;
  std::uint64_t stale_ops = 0;
  std::size_t recovered = 0;
  std::size_t orphans = 0;
  int reestablishments = 0;
  std::uint64_t trace_hash = 0;  // see ChaosOutcome::trace_hash
  std::uint64_t trace_packets = 0;

  bool operator==(const FailoverOutcome&) const = default;
};

/// One seeded primary-kill schedule on top of the regular fault mix: the
/// standby performs the takeover on its own (heartbeat machinery), the
/// directory repoints the clients, and the run must end with every
/// surviving channel delivering and a clean audit -- including RC-2 -- on
/// whichever controller is primary at the end.
FailoverOutcome run_failover_chaos(
    Fabric& fabric, std::uint64_t seed,
    FaultInjectorOptions::PrimaryKillMode mode) {
  net::TraceHash trace(fabric.network());
  SimBackend backend;
  JournalStore store(backend);
  fabric.mc().journal().attach_store(&store);
  ControllerDirectory directory(fabric.mc());
  StandbyController standby(fabric.mc(), directory, {});
  standby.start();

  MicServer server(fabric.host(12), 7000, fabric.rng());
  std::uint64_t received = 0;
  server.set_on_channel([&](core::MicServerChannel& channel) {
    channel.set_on_data(
        [&](const transport::ChunkView& view) { received += view.length; });
  });

  const std::vector<std::size_t> client_idx = {0, 3, 5, 9};
  std::vector<std::unique_ptr<MicChannel>> clients;
  for (std::size_t i = 0; i < client_idx.size(); ++i) {
    MicChannelOptions o;
    o.responder_ip = fabric.ip(12);
    o.responder_port = 7000;
    o.flow_count = 1 + static_cast<int>(i % 2);
    o.auto_reestablish = true;
    o.control_timeout = sim::milliseconds(10);
    o.control_retry_limit = 20;
    o.heartbeat_interval = sim::milliseconds(2);
    clients.push_back(std::make_unique<MicChannel>(
        fabric.host(client_idx[i]), directory, o, fabric.rng()));
  }
  auto run_for = [&fabric](sim::SimTime dt) {
    fabric.simulator().run_until(fabric.simulator().now() + dt);
  };
  run_for(sim::milliseconds(30));
  for (const auto& client : clients) {
    EXPECT_TRUE(client->ready());
  }

  constexpr std::uint64_t kInitial = 256 * 1024;
  for (const auto& client : clients) {
    client->send(transport::Chunk::virtual_bytes(kInitial));
  }

  FaultInjectorOptions fo;
  fo.seed = seed;
  fo.primary_kills = 1;
  fo.primary_kill_mode = mode;
  FaultInjector injector(fabric.network(), fabric.mc(), fo);
  injector.attach_journal_backend(&backend);
  injector.attach_standby(&standby);
  injector.arm();
  run_for(sim::milliseconds(400));

  EXPECT_EQ(injector.primary_kills_fired(), 1u);
  EXPECT_TRUE(standby.active());
  core::MimicController& mc = directory.current();
  EXPECT_EQ(&mc, &standby.mc());
  EXPECT_FALSE(mc.crashed());

  using KillMode = FaultInjectorOptions::PrimaryKillMode;
  if (mode == KillMode::kZombie &&
      !(fabric.mc().deposed() || fabric.mc().crashed())) {
    // No post-takeover event made the zombie act yet: provoke one fenced
    // op (a switch-switch link flap both controllers react to) so the run
    // always ends with a single primary.
    const auto& graph = fabric.network().graph();
    topo::LinkId link = topo::kInvalidLink;
    for (const topo::NodeId sw : graph.switches()) {
      for (const auto& adj : graph.neighbors(sw)) {
        if (graph.is_switch(adj.peer)) {
          link = adj.link;
          break;
        }
      }
      if (link != topo::kInvalidLink) break;
    }
    EXPECT_NE(link, topo::kInvalidLink);
    if (link != topo::kInvalidLink) {
      fabric.network().set_link_up(link, false);
      run_for(sim::milliseconds(10));
      fabric.network().set_link_up(link, true);
      run_for(sim::milliseconds(30));
    }
  }
  if (mode == KillMode::kZombie) {
    EXPECT_TRUE(fabric.mc().deposed() || fabric.mc().crashed());
  } else {
    EXPECT_TRUE(fabric.mc().crashed());
  }
  EXPECT_TRUE(mc.failed_links().empty());
  EXPECT_TRUE(mc.failed_switches().empty());

  const audit::RunReport report = audit::run_all(mc);
  EXPECT_TRUE(report.ok) << report.first_violation();

  // Surviving channels keep forwarding (or auto-re-established) through
  // the new primary, byte for byte.
  constexpr std::uint64_t kProbe = 16 * 1024;
  const std::uint64_t before = received;
  std::uint64_t expected = 0;
  FailoverOutcome out;
  for (const auto& client : clients) {
    if (client->failed() || !client->ready()) continue;
    EXPECT_NE(mc.channel(client->id()), nullptr);
    client->send(transport::Chunk::virtual_bytes(kProbe));
    expected += kProbe;
    ++out.alive;
  }
  run_for(sim::milliseconds(100));
  EXPECT_EQ(received - before, expected);

  out.received = received;
  out.kills = injector.primary_kills_fired();
  out.failovers = directory.failovers();
  out.replicated = standby.records_replicated();
  out.stale_ops = report.check("RC-2").metric("stale_ops_rejected");
  out.recovered = standby.takeover_report().channels_recovered;
  out.orphans = standby.takeover_report().orphan_rules_removed;
  for (const auto& client : clients) {
    out.reestablishments += client->reestablish_attempts();
  }

  for (const auto& client : clients) client->close();
  fabric.simulator().run_until();
  EXPECT_TRUE(fabric.simulator().idle());
  const audit::RunReport final_report = audit::run_all(mc);
  EXPECT_TRUE(final_report.ok) << final_report.first_violation();
  out.trace_hash = trace.value();
  out.trace_packets = trace.packets();
  if (std::getenv("MIC_PRINT_TRACE_HASH") != nullptr) {
    const char* mode_name = "?";
    switch (mode) {
      case FaultInjectorOptions::PrimaryKillMode::kClean:
        mode_name = "clean"; break;
      case FaultInjectorOptions::PrimaryKillMode::kTornTail:
        mode_name = "torn-tail"; break;
      case FaultInjectorOptions::PrimaryKillMode::kFsyncLapse:
        mode_name = "fsync-lapse"; break;
      case FaultInjectorOptions::PrimaryKillMode::kZombie:
        mode_name = "zombie"; break;
    }
    std::fprintf(stderr,
                 "TRACE_HASH failover-%s seed=%llu hash=%016llx n=%llu\n",
                 mode_name, static_cast<unsigned long long>(seed),
                 static_cast<unsigned long long>(out.trace_hash),
                 static_cast<unsigned long long>(out.trace_packets));
  }
  return out;
}

using KillMode = FaultInjectorOptions::PrimaryKillMode;

void soak(KillMode mode, std::uint64_t fabric_seed_base) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    FabricOptions fo;
    fo.seed = fabric_seed_base + seed;
    Fabric fabric(fo);
    const FailoverOutcome out = run_failover_chaos(fabric, seed, mode);
    EXPECT_EQ(out.failovers, 1u);
    EXPECT_GT(out.replicated, 0u);
  }
}

TEST(FailoverSoak, CleanKill) { soak(KillMode::kClean, 600); }

TEST(FailoverSoak, TornTail) { soak(KillMode::kTornTail, 610); }

TEST(FailoverSoak, FsyncLapse) { soak(KillMode::kFsyncLapse, 620); }

TEST(FailoverSoak, ZombieExPrimary) { soak(KillMode::kZombie, 630); }

TEST(FailoverSoak, SameSeedSameOutcome) {
  auto once = [] {
    FabricOptions fo;
    fo.seed = 641;
    Fabric fabric(fo);
    return run_failover_chaos(fabric, 17, KillMode::kTornTail);
  };
  const FailoverOutcome first = once();
  const FailoverOutcome second = once();
  EXPECT_EQ(first, second);  // includes trace_hash and trace_packets
  EXPECT_NE(first.trace_hash, 0u);
}

TEST(FailoverSoak, ShardedReplayBitIdentical) {
  // SIM-3 for the failover path: replication, heartbeats, takeover and the
  // storage engine all ride the global engine, so the pod-sharded run in
  // its serial-exact regime reproduces the kill schedule bit for bit.
  auto once = [](int shards) {
    FabricOptions fo;
    fo.seed = 642;
    fo.sim_shards = shards;
    fo.sim_threads = 1;
    Fabric fabric(fo);
    return run_failover_chaos(fabric, 23, KillMode::kFsyncLapse);
  };
  const FailoverOutcome single = once(1);
  const FailoverOutcome sharded = once(4);
  EXPECT_EQ(single, sharded);
  EXPECT_NE(sharded.trace_hash, 0u);
}

// --- non-invasiveness ---------------------------------------------------------

TEST(FailoverSoak, FollowOnlyStandbyIsTraceInvisible) {
  // The acceptance bar for enabling the storage engine + standby by
  // default: with the standby in follow-only mode (no probes, no
  // takeover), a seeded chaos run's packet trace is bit-identical to the
  // same run without either -- replication and fsync bookkeeping are pure
  // simulator events and never touch a link.
  auto once = [](bool with_standby) {
    FabricOptions fo;
    fo.seed = 650;
    Fabric fabric(fo);
    net::TraceHash trace(fabric.network());
    SimBackend backend;
    JournalStore store(backend);
    ControllerDirectory directory(fabric.mc());
    std::unique_ptr<StandbyController> standby;
    if (with_standby) {
      fabric.mc().journal().attach_store(&store);
      standby = std::make_unique<StandbyController>(fabric.mc(), directory,
                                                    follow_only());
      standby->start();
    }

    MicServer server(fabric.host(12), 7000, fabric.rng());
    server.set_on_channel([](core::MicServerChannel&) {});
    std::vector<std::unique_ptr<MicChannel>> clients;
    for (const std::size_t host : {0ul, 3ul, 5ul}) {
      MicChannelOptions o;
      o.responder_ip = fabric.ip(12);
      o.responder_port = 7000;
      o.auto_reestablish = true;
      clients.push_back(std::make_unique<MicChannel>(
          fabric.host(host), fabric.mc(), o, fabric.rng()));
    }
    fabric.simulator().run_until();
    for (const auto& client : clients) {
      EXPECT_TRUE(client->ready());
    }
    for (const auto& client : clients) {
      client->send(transport::Chunk::virtual_bytes(512 * 1024));
    }
    FaultInjectorOptions fo2;
    fo2.seed = 7;
    FaultInjector injector(fabric.network(), fabric.mc(), fo2);
    injector.arm();
    fabric.simulator().run_until();
    if (with_standby) {
      EXPECT_GT(standby->records_replicated(), 0u);
      EXPECT_GT(store.records_durable(), 0u);
    }
    return std::pair<std::uint64_t, std::uint64_t>{trace.value(),
                                                   trace.packets()};
  };
  const auto bare = once(false);
  const auto followed = once(true);
  EXPECT_EQ(bare, followed);
  EXPECT_NE(bare.first, 0u);
}

}  // namespace
}  // namespace mic
