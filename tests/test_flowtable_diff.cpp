// Differential harness for the two-tier flow table (invariant FT-1).
//
// The exact-match index is a pure optimization: for every packet the
// two-tier lookup() must return the identical rule object as the retained
// reference linear scan.  A subtly wrong fast path would not crash -- it
// would silently re-route m-flows and corrupt every anonymity measurement
// downstream -- so we fuzz it: thousands of seeded random (rule set, packet
// stream) pairs mixing exact rules, partial wildcards, overlapping
// priorities, duplicate match keys at different priorities, and mid-stream
// rule removal, asserting pointer-identical results throughout.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "switchd/flow_table.hpp"

namespace mic::switchd {
namespace {

// Small value pools so that rules overlap each other and packets actually
// hit rules; a generator over the full 32-bit spaces would only ever
// exercise the miss path.
constexpr net::Ipv4 kIps[] = {{10, 0, 0, 1}, {10, 0, 0, 2}, {10, 0, 0, 3},
                              {10, 1, 0, 1}, {10, 1, 0, 2}, {192, 168, 0, 1}};
constexpr net::L4Port kPorts[] = {80, 443, 7000, 30000};
constexpr net::MplsLabel kLabels[] = {3, 77, 0xabcd, 0x00050001};
constexpr topo::PortId kInPorts[] = {0, 1, 2};
// Repeated values force priority ties (resolved by install order) and
// cross-tier ties between exact and wildcard rules.
constexpr std::uint16_t kPriorities[] = {10, 20, 25, 30, 100, 100, 110, 110};

template <typename T, std::size_t N>
const T& pick(Rng& rng, const T (&pool)[N]) {
  return pool[rng.below(N)];
}

Match random_exact_match(Rng& rng) {
  Match m;
  m.in_port = pick(rng, kInPorts);
  m.src = pick(rng, kIps);
  m.dst = pick(rng, kIps);
  m.sport = pick(rng, kPorts);
  m.dport = pick(rng, kPorts);
  if (rng.chance(0.3)) {
    m.require_no_mpls = true;  // pinned to "untagged", like a first-MN rule
  } else {
    m.mpls = pick(rng, kLabels);
  }
  return m;
}

Match random_wildcard_match(Rng& rng) {
  Match m;
  if (rng.chance(0.4)) m.in_port = pick(rng, kInPorts);
  if (rng.chance(0.5)) m.src = pick(rng, kIps);
  if (rng.chance(0.5)) m.dst = pick(rng, kIps);
  if (rng.chance(0.3)) m.sport = pick(rng, kPorts);
  if (rng.chance(0.3)) m.dport = pick(rng, kPorts);
  if (rng.chance(0.25)) m.mpls = pick(rng, kLabels);
  if (rng.chance(0.2)) m.require_no_mpls = true;  // may contradict mpls
  return m;
}

FlowTable random_table(Rng& rng, std::size_t rule_target) {
  FlowTable table;
  for (std::size_t i = 0; i < rule_target; ++i) {
    FlowRule rule;
    rule.priority = pick(rng, kPriorities);
    // Bias toward exact rules, mirroring a loaded MN where m-flow rewrite
    // rules dwarf the static L3 wildcards.
    rule.match = rng.chance(0.7) ? random_exact_match(rng)
                                 : random_wildcard_match(rng);
    rule.actions = {Output{static_cast<topo::PortId>(rng.below(4))}};
    rule.cookie = rng.range(1, 4);
    table.add_rule(std::move(rule));  // duplicate (priority, match) rejected
  }
  return table;
}

net::Packet random_packet(Rng& rng) {
  net::Packet p;
  // Mostly pool values (hit exact rules); occasionally stray values that
  // can only hit wildcards or miss.
  p.src = rng.chance(0.9) ? pick(rng, kIps)
                          : net::Ipv4{static_cast<std::uint32_t>(rng.next())};
  p.dst = rng.chance(0.9) ? pick(rng, kIps)
                          : net::Ipv4{static_cast<std::uint32_t>(rng.next())};
  p.sport = rng.chance(0.9) ? pick(rng, kPorts)
                            : static_cast<net::L4Port>(rng.next());
  p.dport = rng.chance(0.9) ? pick(rng, kPorts)
                            : static_cast<net::L4Port>(rng.next());
  if (rng.chance(0.6)) p.mpls = pick(rng, kLabels);
  p.tcp.payload_len = static_cast<std::uint32_t>(rng.below(1461));
  return p;
}

/// One lookup checked against the oracle.  Returns the number of cases
/// exercised (always 1; kept explicit for the tally).
std::size_t check_one(FlowTable& table, Rng& rng) {
  const net::Packet packet = random_packet(rng);
  const topo::PortId in_port = pick(rng, kInPorts);
  const FlowRule* expected = table.reference_lookup(packet, in_port);
  FlowRule* actual = table.lookup(packet, in_port, packet.wire_bytes());
  EXPECT_EQ(actual, expected)
      << "two-tier lookup diverged from the reference scan (rules="
      << table.rule_count() << ", indexed=" << table.indexed_rule_count()
      << ")";
  return 1;
}

TEST(FlowTableDifferential, IndexedLookupEqualsReferenceScan) {
  std::size_t cases = 0;
  for (std::uint64_t seed = 1; seed <= 48; ++seed) {
    Rng rng(seed * 0x9e3779b9ULL + 7);
    FlowTable table = random_table(rng, rng.range(1, 64));
    for (int i = 0; i < 128; ++i) cases += check_one(table, rng);
    const TableStats& s = table.stats();
    EXPECT_EQ(s.lookups, s.index_hits + s.scan_fallbacks + s.misses);
  }
  // The acceptance bar: thousands of randomized cases, zero divergence.
  EXPECT_GE(cases, 5000u);
}

TEST(FlowTableDifferential, AgreementSurvivesRuleChurn) {
  // Install / lookup / remove-by-cookie cycles: the index must be rebuilt
  // consistently after every mutation, including ones that remove rules
  // shadowing same-key rules at lower priority.
  std::size_t cases = 0;
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    Rng rng(seed * 0x51ed2701ULL + 3);
    FlowTable table = random_table(rng, 32);
    for (int round = 0; round < 6; ++round) {
      for (int i = 0; i < 24; ++i) cases += check_one(table, rng);
      table.remove_by_cookie(rng.range(1, 4));
      for (int i = 0; i < 8; ++i) {
        FlowRule rule;
        rule.priority = pick(rng, kPriorities);
        rule.match = rng.chance(0.7) ? random_exact_match(rng)
                                     : random_wildcard_match(rng);
        rule.actions = {Output{0}};
        rule.cookie = rng.range(1, 4);
        table.add_rule(std::move(rule));
      }
    }
    for (int i = 0; i < 24; ++i) cases += check_one(table, rng);
  }
  EXPECT_GE(cases, 3000u);
}

TEST(FlowTableDifferential, EmptyAndWildcardOnlyTables) {
  Rng rng(99);
  FlowTable empty;
  for (int i = 0; i < 64; ++i) check_one(empty, rng);
  EXPECT_EQ(empty.stats().misses, empty.stats().lookups);

  FlowTable wildcards;
  for (int i = 0; i < 16; ++i) {
    FlowRule rule;
    rule.priority = pick(rng, kPriorities);
    rule.match = random_wildcard_match(rng);
    rule.actions = {Output{0}};
    wildcards.add_rule(std::move(rule));
  }
  EXPECT_EQ(wildcards.indexed_rule_count(), 0u);
  for (int i = 0; i < 256; ++i) check_one(wildcards, rng);
  EXPECT_EQ(wildcards.stats().index_hits, 0u);
}

TEST(FlowTableDifferential, SameKeyDifferentPriorityKeepsBestIndexed) {
  // Two exact rules with one match key at different priorities: the index
  // must serve the higher-priority one, and keep doing so after the winner
  // is removed.
  FlowTable table;
  Rng rng(1);
  FlowRule low;
  low.priority = 50;
  low.cookie = 1;
  low.match = random_exact_match(rng);
  FlowRule high = low;
  high.priority = 120;
  high.cookie = 2;
  ASSERT_TRUE(table.add_rule(low));
  ASSERT_TRUE(table.add_rule(high));
  EXPECT_EQ(table.indexed_rule_count(), 1u);

  net::Packet p;
  p.src = *low.match.src;
  p.dst = *low.match.dst;
  p.sport = *low.match.sport;
  p.dport = *low.match.dport;
  p.mpls = low.match.mpls.value_or(net::kNoMpls);
  const topo::PortId in = *low.match.in_port;

  FlowRule* hit = table.lookup(p, in, p.wire_bytes());
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->cookie, 2u);
  EXPECT_EQ(hit, table.reference_lookup(p, in));

  table.remove_by_cookie(2);
  hit = table.lookup(p, in, p.wire_bytes());
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->cookie, 1u);
  EXPECT_EQ(hit, table.reference_lookup(p, in));
}

}  // namespace
}  // namespace mic::switchd
