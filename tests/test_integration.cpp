// Cross-module integration tests: determinism of full runs, mixed
// workloads, restrictions consistency, fabric assembly.
#include <gtest/gtest.h>

#include "core/collision_audit.hpp"
#include "core/fabric.hpp"
#include "topology/leafspine.hpp"
#include "core/mic_client.hpp"
#include "transport/apps.hpp"

namespace mic {
namespace {

using core::Fabric;
using core::FabricOptions;

TEST(Fabric, AssemblesPaperTestbed) {
  Fabric fabric;
  EXPECT_EQ(fabric.host_count(), 16u);
  // Every host has an IP and a device.
  for (std::size_t i = 0; i < fabric.host_count(); ++i) {
    EXPECT_EQ(fabric.host(i).ip(), fabric.ip(i));
  }
  // Default routing was installed on every switch.
  for (const topo::NodeId sw : fabric.network().graph().switches()) {
    EXPECT_GT(fabric.mc().switch_at(sw)->table().rule_count(), 0u);
  }
}

TEST(Fabric, CommonFlowsTaggedCfOnFabricLinks) {
  // Common traffic carries a CF label while transiting (and none on the
  // access links).
  Fabric fabric;
  bool saw_tagged = false;
  fabric.network().add_global_tap([&](topo::LinkId, topo::NodeId from,
                                      topo::NodeId to, const net::Packet& p,
                                      sim::SimTime) {
    const auto& graph = fabric.network().graph();
    if (graph.is_switch(from) && graph.is_switch(to) &&
        p.mpls != net::kNoMpls) {
      saw_tagged = true;
      EXPECT_EQ(fabric.mc().registry().class_of_label(p.mpls),
                fabric.mc().registry().c_id());
    }
    if (graph.is_host(to)) {
      EXPECT_EQ(p.mpls, net::kNoMpls);  // popped before delivery
    }
  });

  std::uint64_t received = 0;
  fabric.host(12).listen(6000, [&](transport::TcpConnection& conn) {
    conn.set_on_data(
        [&](const transport::ChunkView& view) { received += view.length; });
  });
  auto& conn = fabric.host(0).connect(fabric.ip(12), 6000);
  conn.set_on_ready([&] { conn.send(transport::Chunk::virtual_bytes(65536)); });
  fabric.simulator().run_until();
  EXPECT_EQ(received, 65536u);
  EXPECT_TRUE(saw_tagged);
}

TEST(Determinism, IdenticalSeedsIdenticalTraces) {
  // SIM-1: two runs with the same seed produce identical packet traces.
  auto run_trace = [](std::uint64_t seed) {
    FabricOptions options;
    options.seed = seed;
    Fabric fabric(options);
    std::vector<std::uint64_t> trace;
    fabric.network().add_global_tap(
        [&](topo::LinkId link, topo::NodeId from, topo::NodeId,
            const net::Packet& p, sim::SimTime t) {
          trace.push_back(t ^ (static_cast<std::uint64_t>(link) << 40) ^
                          (static_cast<std::uint64_t>(from) << 48) ^
                          p.src.value ^ p.dst.value ^ p.mpls);
        });
    core::MicServer server(fabric.host(12), 7000, fabric.rng());
    core::MicChannelOptions channel_options;
    channel_options.responder_ip = fabric.ip(12);
    channel_options.responder_port = 7000;
    channel_options.flow_count = 2;
    core::MicChannel channel(fabric.host(0), fabric.mc(), channel_options,
                             fabric.rng());
    channel.send(transport::Chunk::virtual_bytes(128 * 1024));
    fabric.simulator().run_until();
    return trace;
  };

  const auto a = run_trace(777);
  const auto b = run_trace(777);
  EXPECT_EQ(a, b);
  const auto c = run_trace(778);
  EXPECT_NE(a, c);
}

TEST(Determinism, QuickstartScenarioTracesAndStatsReproduce) {
  // SIM-1 regression on the full quickstart lifecycle (bring-up, channel
  // establishment, ping/pong, teardown): identical seeds must reproduce
  // not just the packet trace but every per-switch observable -- forwarded
  // and dropped counts and the two-tier table's lookup stats.  A lookup
  // tier gone nondeterministic (e.g. hash-order dependent) would show up
  // here even if packets still flowed.
  struct RunResult {
    std::vector<std::uint64_t> trace;
    std::vector<std::uint64_t> switch_stats;
    std::string reply;
    bool operator==(const RunResult&) const = default;
  };
  auto run_quickstart = [](std::uint64_t seed) {
    FabricOptions options;
    options.seed = seed;
    Fabric fabric(options);
    RunResult result;
    fabric.network().add_global_tap(
        [&](topo::LinkId link, topo::NodeId from, topo::NodeId to,
            const net::Packet& p, sim::SimTime t) {
          result.trace.push_back(
              t ^ (static_cast<std::uint64_t>(link) << 36) ^
              (static_cast<std::uint64_t>(from) << 44) ^
              (static_cast<std::uint64_t>(to) << 52) ^ p.src.value ^
              (static_cast<std::uint64_t>(p.dst.value) << 8) ^ p.mpls ^
              (static_cast<std::uint64_t>(p.sport) << 16) ^ p.dport);
        });

    core::MicServer server(fabric.host(12), 7000, fabric.rng());
    server.set_on_channel([](core::MicServerChannel& channel) {
      channel.set_on_data([&channel](const transport::ChunkView&) {
        channel.send(transport::Chunk::real({'p', 'o', 'n', 'g'}));
      });
    });

    core::MicChannelOptions channel_options;
    channel_options.responder_ip = fabric.ip(12);
    channel_options.responder_port = 7000;
    channel_options.mn_count = 3;
    core::MicChannel channel(fabric.host(0), fabric.mc(), channel_options,
                             fabric.rng());
    channel.set_on_data([&](const transport::ChunkView& view) {
      result.reply.assign(view.bytes.begin(), view.bytes.end());
    });
    channel.send(transport::Chunk::real({'p', 'i', 'n', 'g'}));
    fabric.simulator().run_until();
    channel.close();
    fabric.simulator().run_until();

    for (const topo::NodeId sw : fabric.network().graph().switches()) {
      const auto* dev = fabric.mc().switch_at(sw);
      const switchd::TableStats& stats = dev->table_stats();
      result.switch_stats.insert(
          result.switch_stats.end(),
          {dev->forwarded(), dev->dropped(), dev->table().rule_count(),
           stats.lookups, stats.index_hits, stats.scan_fallbacks,
           stats.misses});
    }
    const switchd::TableStats total = fabric.mc().aggregate_table_stats();
    EXPECT_EQ(total.lookups,
              total.index_hits + total.scan_fallbacks + total.misses);
    // The m-flow data path must actually ride the exact-match index.
    EXPECT_GT(total.index_hits, 0u);
    return result;
  };

  const RunResult a = run_quickstart(4242);
  const RunResult b = run_quickstart(4242);
  EXPECT_EQ(a.reply, "pong");
  EXPECT_TRUE(a == b) << "same-seed quickstart runs diverged";
  const RunResult c = run_quickstart(4243);
  EXPECT_NE(a.trace, c.trace);
}

TEST(Integration, ManyMimicChannelsConcurrently) {
  Fabric fabric;
  std::vector<std::unique_ptr<core::MicServer>> servers;
  std::vector<std::uint64_t> received(4, 0);
  for (int s = 0; s < 4; ++s) {
    auto server = std::make_unique<core::MicServer>(
        fabric.host(static_cast<std::size_t>(12 + s)), 7000, fabric.rng());
    server->set_on_channel([&received, s](core::MicServerChannel& channel) {
      channel.set_on_data(
          [&received, s](const transport::ChunkView& view) {
            received[static_cast<std::size_t>(s)] += view.length;
          });
    });
    servers.push_back(std::move(server));
  }

  std::vector<std::unique_ptr<core::MicChannel>> channels;
  for (int c = 0; c < 4; ++c) {
    core::MicChannelOptions options;
    options.responder_ip = fabric.ip(static_cast<std::size_t>(12 + c));
    options.responder_port = 7000;
    options.flow_count = 1 + c % 3;
    channels.push_back(std::make_unique<core::MicChannel>(
        fabric.host(static_cast<std::size_t>(c)), fabric.mc(), options,
        fabric.rng()));
    channels.back()->send(transport::Chunk::virtual_bytes(256 * 1024));
  }
  fabric.simulator().run_until();

  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(received[static_cast<std::size_t>(s)], 256u * 1024u)
        << "server " << s;
  }
  EXPECT_TRUE(core::audit_collisions(fabric.mc()).ok);
}

TEST(Integration, RestrictionsMatchActualRouting) {
  // Every destination the L3 routing sends out a port must be in that
  // port's allowed_dst set (the restriction sets are supersets of real
  // routing behaviour, so m-addresses are indistinguishable from real
  // destinations).
  Fabric fabric;
  const auto& restrictions = fabric.mc().restrictions();
  const auto& graph = fabric.network().graph();
  for (const topo::NodeId sw : graph.switches()) {
    for (const auto& rule : fabric.mc().switch_at(sw)->table().rules()) {
      if (rule.priority != ctrl::kPriorityTransit || !rule.match.dst) continue;
      for (const auto& action : rule.actions) {
        if (const auto* out = std::get_if<switchd::Output>(&action)) {
          const auto& allowed = restrictions.allowed_dst(sw, out->port);
          EXPECT_NE(std::find(allowed.begin(), allowed.end(), *rule.match.dst),
                    allowed.end())
              << "switch " << sw << " routes " << rule.match.dst->str()
              << " out port " << out->port
              << " but the restriction set disallows it";
        }
      }
    }
  }
}

TEST(Integration, BigFatTreeFabricWorks) {
  FabricOptions options;
  options.k = 6;  // 54 hosts, 45 switches
  Fabric fabric(options);
  core::MicServer server(fabric.host(53), 7000, fabric.rng());
  std::uint64_t received = 0;
  server.set_on_channel([&](core::MicServerChannel& channel) {
    channel.set_on_data(
        [&](const transport::ChunkView& view) { received += view.length; });
  });
  core::MicChannelOptions channel_options;
  channel_options.responder_ip = fabric.ip(53);
  channel_options.responder_port = 7000;
  channel_options.mn_count = 5;
  core::MicChannel channel(fabric.host(0), fabric.mc(), channel_options,
                           fabric.rng());
  channel.send(transport::Chunk::virtual_bytes(64 * 1024));
  fabric.simulator().run_until();
  EXPECT_EQ(received, 64u * 1024u);
  EXPECT_TRUE(core::audit_collisions(fabric.mc()).ok);
}



TEST(FabricOptions, LinkConfigPropagates) {
  // A 100 Mb/s fabric caps a single flow's goodput accordingly.
  FabricOptions options;
  options.link.bandwidth_bps = 100'000'000;
  Fabric fabric(options);
  std::unique_ptr<transport::BulkSink> sink;
  constexpr std::uint64_t kBytes = 1024 * 1024;
  fabric.host(12).listen(6000, [&](transport::TcpConnection& conn) {
    sink = std::make_unique<transport::BulkSink>(conn, fabric.simulator(),
                                                 kBytes);
  });
  auto& conn = fabric.host(0).connect(fabric.ip(12), 6000);
  conn.set_on_ready([&] { conn.send(transport::Chunk::virtual_bytes(kBytes)); });
  fabric.simulator().run_until();
  ASSERT_TRUE(sink != nullptr && sink->finished());
  EXPECT_LT(sink->goodput_bps(), 100e6);
  EXPECT_GT(sink->goodput_bps(), 70e6);
}

TEST(FabricOptions, ControlLatencyShapesSetupTime) {
  FabricOptions slow;
  slow.mic.control_latency = sim::milliseconds(2);
  Fabric fabric(slow);
  core::MicServer server(fabric.host(12), 7000, fabric.rng());
  core::MicChannelOptions options;
  options.responder_ip = fabric.ip(12);
  options.responder_port = 7000;
  core::MicChannel channel(fabric.host(0), fabric.mc(), options,
                           fabric.rng());
  fabric.simulator().run_until();
  ASSERT_TRUE(channel.ready());
  // Two control-channel traversals alone cost 4 ms.
  EXPECT_GT(channel.setup_time(), sim::milliseconds(4));
}

TEST(Apps, BulkSinkGoodputMath) {
  // Synthetic: drive the sink with a hand-rolled stream.
  class FakeStream : public transport::ByteStream {
   public:
    void send(transport::Chunk) override {}
    void close() override {}
    bool ready() const override { return true; }
    void feed(std::uint64_t n) { notify_data({n, {}}); }
  };
  sim::Simulator simulator;
  FakeStream stream;
  transport::BulkSink sink(stream, simulator, 3000);
  simulator.schedule_at(sim::milliseconds(1), [&] { stream.feed(1000); });
  simulator.schedule_at(sim::milliseconds(4), [&] { stream.feed(2000); });
  simulator.run_until();
  ASSERT_TRUE(sink.finished());
  EXPECT_EQ(sink.first_byte_at(), sim::milliseconds(1));
  EXPECT_EQ(sink.finished_at(), sim::milliseconds(4));
  // 3000 bytes over 3 ms = 8 Mb/s.
  EXPECT_DOUBLE_EQ(sink.goodput_bps(), 8e6);
}

TEST(CostModel, HelpersComposeLinearly) {
  const crypto::CostModel& costs = crypto::default_cost_model();
  EXPECT_DOUBLE_EQ(
      costs.stream_crypt_cycles(1000),
      costs.chacha20_cpb * 1000 + costs.hmac_fixed_cycles);
  EXPECT_DOUBLE_EQ(costs.aes_crypt_cycles(64), costs.aes128_cpb * 64);
  EXPECT_GT(costs.dh_modexp_cycles, 1e6);  // asymmetric >> symmetric
  EXPECT_GT(costs.dh_modexp_cycles, 100 * costs.switch_lookup_cycles);
}

TEST(LeafSpine, StructureAndAddressing) {
  const topo::LeafSpine ls(4, 6, 8);
  EXPECT_EQ(ls.spine_count(), 4);
  EXPECT_EQ(ls.leaf_count(), 6);
  EXPECT_EQ(ls.hosts().size(), 48u);
  // Leaves: hosts_per_leaf + spines ports; spines: one port per leaf.
  for (const topo::NodeId leaf : ls.leaf_switches()) {
    EXPECT_EQ(ls.graph().port_count(leaf), 12u);
  }
  for (const topo::NodeId spine : ls.spine_switches()) {
    EXPECT_EQ(ls.graph().port_count(spine), 6u);
  }
  const topo::PathEngine paths(ls.graph());
  // Host to host across leaves: host-leaf-spine-leaf-host = 4 links.
  EXPECT_EQ(paths.distance(ls.hosts()[0], ls.hosts()[47]), 4u);
}

TEST(GenericFabric, MicRunsOnLeafSpine) {
  // MIC on a non-fat-tree topology: everything (paths, restrictions,
  // MAGA, routing, slicing) works unchanged.
  static const topo::LeafSpine ls(3, 4, 4);  // 16 hosts
  std::vector<std::pair<topo::NodeId, net::Ipv4>> addrs;
  for (const topo::NodeId h : ls.hosts()) {
    addrs.push_back({h, net::Ipv4{ls.host_ip(h)}});
  }
  core::GenericFabric fabric(ls.graph(), addrs);

  core::MicServer server(fabric.host(12), 7000, fabric.rng());
  std::uint64_t received = 0;
  server.set_on_channel([&](core::MicServerChannel& channel) {
    channel.set_on_data(
        [&](const transport::ChunkView& view) { received += view.length; });
  });

  core::MicChannelOptions options;
  options.responder_ip = fabric.ip(12);
  options.responder_port = 7000;
  options.mn_count = 3;
  options.flow_count = 2;
  core::MicChannel channel(fabric.host(0), fabric.mc(), options,
                           fabric.rng());

  // Unlinkability holds on the new topology too.
  std::uint64_t linking = 0;
  const net::Ipv4 a = fabric.ip(0), b = fabric.ip(12);
  fabric.network().add_global_tap(
      [&](topo::LinkId, topo::NodeId, topo::NodeId, const net::Packet& p,
          sim::SimTime) {
        linking += (p.src == a || p.dst == a) && (p.src == b || p.dst == b);
      });

  channel.send(transport::Chunk::virtual_bytes(256 * 1024));
  fabric.simulator().run_until();
  EXPECT_EQ(received, 256u * 1024u);
  EXPECT_EQ(linking, 0u);
  EXPECT_TRUE(core::audit_collisions(fabric.mc()).ok);
}

}  // namespace
}  // namespace mic
