// Durable journal storage engine (src/core/journal_store.hpp): the record
// codec (round-trip + corruption degradation), the SimBackend's volatile
// page-cache model and its seeded fault hooks, the FileBackend against a
// real temp directory, fsync policies vs the durability frontier, segment
// rotation + compaction, end-of-log recovery semantics, and the
// journal-bytes fuzzer -- arbitrary truncation/flip/splice of the log must
// always yield a clean parse error with an offset, never a crash (the
// ASan/UBSan tiers run this file too).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/channel_journal.hpp"
#include "core/fabric.hpp"
#include "core/journal_store.hpp"
#include "core/mic_client.hpp"

namespace mic::core {
namespace {

// --- helpers -----------------------------------------------------------------

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

/// Frame one payload the way the segment engine does:
/// [u32 length][u32 crc][payload], little-endian.
void frame(std::vector<std::uint8_t>& log,
           const std::vector<std::uint8_t>& payload) {
  put_u32(log, static_cast<std::uint32_t>(payload.size()));
  put_u32(log, journal_crc32(payload.data(), payload.size()));
  log.insert(log.end(), payload.begin(), payload.end());
}

/// A representative record with every codec branch exercised: multiple
/// m-flows, MN positions, both address directions, decoys.
JournalRecord sample_record(std::uint64_t seq, JournalRecordType type) {
  JournalRecord record;
  record.type = type;
  record.seq = seq;
  record.epoch = 3;
  record.channel = (7ULL << 32) + seq;
  record.next_channel = record.channel + 1;
  record.next_group = static_cast<std::uint32_t>(100 + seq);
  if (type == JournalRecordType::kTeardown) return record;

  ChannelState& state = record.state;
  state.id = record.channel;
  state.initiator = 2;
  state.responder = 14;
  state.touched_switches = {20, 21, 22};
  state.install_txn = seq + 5;
  for (int f = 0; f < 2; ++f) {
    MFlowPlan plan;
    plan.flow_id = static_cast<FlowId>(10 + f);
    plan.path = {2, 20, 21, 22, 14};
    plan.mn_positions = {1, 3};
    for (std::size_t hop = 0; hop + 1 < plan.path.size(); ++hop) {
      HopAddresses fwd;
      fwd.src = net::Ipv4(10, 0, 0, static_cast<std::uint8_t>(hop + 1));
      fwd.dst = net::Ipv4(10, 0, 1, static_cast<std::uint8_t>(hop + 1));
      fwd.sport = static_cast<net::L4Port>(40000 + hop);
      fwd.dport = static_cast<net::L4Port>(50000 + hop);
      fwd.mpls = hop == 1 ? net::MplsLabel{0x0123'4567} : net::kNoMpls;
      plan.forward.push_back(fwd);
      HopAddresses rev = fwd;
      std::swap(rev.src, rev.dst);
      std::swap(rev.sport, rev.dport);
      plan.reverse.push_back(rev);
    }
    if (f == 0) {
      DecoyPlan decoy;
      decoy.tuple.src = net::Ipv4(10, 2, 0, 9);
      decoy.tuple.dst = net::Ipv4(10, 2, 1, 9);
      decoy.tuple.sport = 1234;
      decoy.tuple.dport = 4321;
      decoy.tuple.mpls = net::MplsLabel{0x00ab'00cd};
      decoy.out_port = 3;
      decoy.next_switch = 21;
      decoy.next_in_port = 1;
      decoy.flow_id = 99;
      plan.decoys.push_back(decoy);
    }
    state.flows.push_back(std::move(plan));
  }
  return record;
}

void expect_equal_records(const JournalRecord& a, const JournalRecord& b) {
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.seq, b.seq);
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.channel, b.channel);
  EXPECT_EQ(a.next_channel, b.next_channel);
  EXPECT_EQ(a.next_group, b.next_group);
  if (a.type != JournalRecordType::kTeardown) {
    EXPECT_TRUE(structurally_equal(a.state, b.state));
  }
}

// --- record codec ------------------------------------------------------------

TEST(JournalCodec, RoundTripsEveryRecordType) {
  const JournalRecordType types[] = {
      JournalRecordType::kEstablish, JournalRecordType::kRepair,
      JournalRecordType::kTeardown, JournalRecordType::kSnapshot};
  std::vector<std::uint8_t> log;
  std::vector<JournalRecord> originals;
  std::uint64_t seq = 1;
  for (const JournalRecordType type : types) {
    originals.push_back(sample_record(seq++, type));
    frame(log, encode_journal_record(originals.back()));
  }

  std::size_t offset = 0;
  for (const JournalRecord& original : originals) {
    JournalRecord decoded;
    const RecordParse parse =
        decode_journal_record(log.data(), log.size(), offset, &decoded);
    ASSERT_EQ(parse.status, RecordParse::Status::kOk) << parse.error;
    expect_equal_records(original, decoded);
    offset = parse.next_offset;
  }
  JournalRecord unused;
  const RecordParse end =
      decode_journal_record(log.data(), log.size(), offset, &unused);
  EXPECT_EQ(end.status, RecordParse::Status::kEndOfLog);
}

TEST(JournalCodec, TruncationIsTornNeverUB) {
  std::vector<std::uint8_t> log;
  frame(log, encode_journal_record(
                 sample_record(1, JournalRecordType::kEstablish)));
  // Every strict prefix must parse as torn (or clean end at offset 0 is
  // impossible here: size > 0 means the frame started).
  for (std::size_t cut = 0; cut < log.size(); ++cut) {
    JournalRecord out;
    const RecordParse parse = decode_journal_record(log.data(), cut, 0, &out);
    if (cut == 0) {
      EXPECT_EQ(parse.status, RecordParse::Status::kEndOfLog);
    } else {
      ASSERT_EQ(parse.status, RecordParse::Status::kTorn) << "cut=" << cut;
      EXPECT_EQ(parse.error_offset, 0u);
      EXPECT_FALSE(parse.error.empty());
    }
  }
}

TEST(JournalCodec, BitFlipIsBadCrcWithOffset) {
  std::vector<std::uint8_t> log;
  frame(log, encode_journal_record(
                 sample_record(1, JournalRecordType::kEstablish)));
  frame(log, encode_journal_record(sample_record(2, JournalRecordType::kRepair)));

  // Flip one payload bit of the *second* record: the scan decodes record 1
  // and stops at record 2's frame start with a CRC error.
  JournalRecord first;
  const RecordParse head =
      decode_journal_record(log.data(), log.size(), 0, &first);
  ASSERT_EQ(head.status, RecordParse::Status::kOk);
  log[head.next_offset + 8 + 3] ^= 0x10;  // a payload byte of record 2

  JournalRecord out;
  const RecordParse parse =
      decode_journal_record(log.data(), log.size(), head.next_offset, &out);
  EXPECT_EQ(parse.status, RecordParse::Status::kBadCrc);
  EXPECT_EQ(parse.error_offset, head.next_offset);
  EXPECT_NE(parse.error.find("CRC"), std::string::npos);
}

TEST(JournalCodec, LengthFieldIsNeverTrusted) {
  // A frame whose length claims more bytes than exist: torn, not a read
  // past the buffer.
  std::vector<std::uint8_t> log;
  put_u32(log, 64);
  put_u32(log, 0);
  log.resize(log.size() + 16, 0xee);
  JournalRecord out;
  const RecordParse parse = decode_journal_record(log.data(), log.size(), 0, &out);
  EXPECT_EQ(parse.status, RecordParse::Status::kTorn);
  EXPECT_FALSE(parse.error.empty());

  // An implausibly huge length (past the 64 MiB record cap) is rejected as
  // a corrupt header before any allocation or read happens.
  std::vector<std::uint8_t> huge;
  put_u32(huge, 0xffff'ffffu);
  put_u32(huge, 0);
  huge.resize(huge.size() + 16, 0xee);
  const RecordParse capped =
      decode_journal_record(huge.data(), huge.size(), 0, &out);
  EXPECT_EQ(capped.status, RecordParse::Status::kBadPayload);
  EXPECT_FALSE(capped.error.empty());
}

TEST(JournalCodec, ForgedPayloadWithValidCrcIsBadPayload) {
  // CRC over garbage is easy to forge; the *decoder* must still reject it
  // cleanly (kBadPayload), because splice attacks can produce exactly this.
  std::vector<std::uint8_t> payload = {0x7f, 0x00, 0x01, 0x02, 0x03};
  std::vector<std::uint8_t> log;
  frame(log, payload);
  JournalRecord out;
  const RecordParse parse = decode_journal_record(log.data(), log.size(), 0, &out);
  EXPECT_EQ(parse.status, RecordParse::Status::kBadPayload);
  EXPECT_FALSE(parse.error.empty());
}

TEST(JournalCodec, FuzzedLogsAlwaysParseOrFailCleanly) {
  // The fuzzer the header advertises: start from a valid multi-record log,
  // then truncate / flip / splice / substitute random bytes, and scan.  The
  // scan must terminate, report offsets inside the buffer, and never crash
  // (ASan/UBSan enforce the "never" part).
  Rng rng(20260807);
  std::vector<std::uint8_t> pristine;
  for (std::uint64_t seq = 1; seq <= 5; ++seq) {
    const auto type = static_cast<JournalRecordType>(seq % 4);
    frame(pristine, encode_journal_record(sample_record(seq, type)));
  }

  for (int iteration = 0; iteration < 400; ++iteration) {
    std::vector<std::uint8_t> log = pristine;
    switch (rng.below(4)) {
      case 0:  // truncate
        log.resize(rng.below(log.size() + 1));
        break;
      case 1:  // flip 1..8 bits
        for (std::uint64_t i = 0, n = 1 + rng.below(8); i < n; ++i) {
          if (log.empty()) break;
          log[rng.below(log.size())] ^=
              static_cast<std::uint8_t>(1u << rng.below(8));
        }
        break;
      case 2: {  // splice a random slice over a random position
        const std::size_t src = rng.below(log.size());
        const std::size_t dst = rng.below(log.size());
        const std::size_t len =
            rng.below(std::min<std::size_t>(64, log.size() - src) + 1);
        std::memmove(log.data() + dst, log.data() + src,
                     std::min(len, log.size() - dst));
        break;
      }
      default:  // pure noise
        log.resize(rng.below(256));
        for (auto& byte : log) byte = static_cast<std::uint8_t>(rng.next());
        break;
    }

    std::size_t offset = 0;
    int guard = 0;
    for (;;) {
      ASSERT_LT(++guard, 10000) << "scan failed to terminate";
      JournalRecord out;
      const RecordParse parse =
          decode_journal_record(log.data(), log.size(), offset, &out);
      if (parse.status == RecordParse::Status::kOk) {
        ASSERT_GT(parse.next_offset, offset);
        ASSERT_LE(parse.next_offset, log.size());
        offset = parse.next_offset;
        continue;
      }
      if (parse.status != RecordParse::Status::kEndOfLog) {
        EXPECT_LE(parse.error_offset, log.size());
        EXPECT_FALSE(parse.error.empty());
      }
      break;
    }
  }
}

// --- SimBackend --------------------------------------------------------------

TEST(SimBackend, CrashDropsEverythingUnsynced) {
  SimBackend backend;
  backend.create("seg-a");
  const std::uint8_t bytes[] = {1, 2, 3, 4, 5, 6};
  backend.append("seg-a", bytes, 4);
  backend.sync("seg-a");
  backend.append("seg-a", bytes + 4, 2);
  EXPECT_EQ(backend.read("seg-a").size(), 6u);
  EXPECT_EQ(backend.durable_bytes("seg-a"), 4u);

  backend.crash();
  EXPECT_EQ(backend.read("seg-a").size(), 4u);
  EXPECT_EQ(backend.crashes(), 1u);
  EXPECT_EQ(backend.bytes_dropped(), 2u);
}

TEST(SimBackend, TornTailKeepsAPartialSector) {
  SimBackend backend;
  backend.create("seg-a");
  const std::uint8_t bytes[] = {1, 2, 3, 4, 5, 6, 7, 8};
  backend.append("seg-a", bytes, 2);
  backend.sync("seg-a");
  backend.append("seg-a", bytes + 2, 6);

  backend.arm_torn_tail(3);
  backend.crash();
  // Durable prefix (2) + 3 torn bytes survive; the rest is gone.  What
  // survived a crash is on stable storage now, torn or not.
  EXPECT_EQ(backend.read("seg-a").size(), 5u);
  EXPECT_EQ(backend.torn_tails_applied(), 1u);
  EXPECT_EQ(backend.durable_bytes("seg-a"), 5u);

  // The torn tail is one-shot: a second crash keeps exactly the same bytes
  // and tears nothing further.
  backend.crash();
  EXPECT_EQ(backend.read("seg-a").size(), 5u);
  EXPECT_EQ(backend.torn_tails_applied(), 1u);
}

TEST(SimBackend, FsyncLapsesSilentlySkipSyncs) {
  SimBackend backend;
  backend.create("seg-a");
  const std::uint8_t bytes[] = {1, 2, 3, 4};
  backend.append("seg-a", bytes, 4);
  backend.lapse_fsyncs(2);
  backend.sync("seg-a");
  backend.sync("seg-a");
  EXPECT_EQ(backend.durable_bytes("seg-a"), 0u);  // the firmware lied twice
  EXPECT_EQ(backend.syncs_lapsed(), 2u);
  backend.sync("seg-a");
  EXPECT_EQ(backend.durable_bytes("seg-a"), 4u);  // honest again
}

TEST(SimBackend, FlipBitCorruptsOnlyDurableBytes) {
  SimBackend backend;
  backend.create("seg-a");
  const std::uint8_t bytes[] = {0x00, 0x00};
  backend.append("seg-a", bytes, 2);
  backend.flip_bit(7);  // nothing durable yet: no-op
  EXPECT_EQ(backend.bits_flipped(), 0u);
  backend.sync("seg-a");
  backend.flip_bit(3);
  EXPECT_EQ(backend.bits_flipped(), 1u);
  const auto after = backend.read("seg-a");
  EXPECT_NE((after[0] | after[1]), 0);
}

TEST(SimBackend, RenameIsAtomicReplaceAndListSorts) {
  SimBackend backend;
  backend.create("b");
  backend.create("a");
  const std::uint8_t byte = 42;
  backend.append("a", &byte, 1);
  backend.sync("a");
  backend.rename("a", "b");
  const auto names = backend.list();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "b");
  EXPECT_EQ(backend.read("b").size(), 1u);
  EXPECT_EQ(backend.durable_bytes("b"), 1u);  // durability travels with it
  backend.remove("b");
  EXPECT_TRUE(backend.list().empty());
}

// --- FileBackend -------------------------------------------------------------

TEST(FileBackend, RoundTripsAgainstARealDirectory) {
  char tmpl[] = "/tmp/mic_journal_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  {
    FileBackend backend(dir);
    backend.create("seg-b");
    backend.create("seg-a");
    const std::uint8_t bytes[] = {9, 8, 7};
    backend.append("seg-a", bytes, 3);
    backend.sync("seg-a");
    EXPECT_EQ(backend.read("seg-a"), std::vector<std::uint8_t>({9, 8, 7}));
    const auto names = backend.list();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "seg-a");  // sorted
    backend.rename("seg-a", "seg-b");
    EXPECT_EQ(backend.read("seg-b").size(), 3u);
    backend.remove("seg-b");
    EXPECT_TRUE(backend.list().empty());
  }
  ::rmdir(dir.c_str());
}

TEST(FileBackend, StoreSurvivesAProcessRestart) {
  // Same engine, real files: a second JournalStore adopting the directory
  // recovers exactly what the first one wrote.
  char tmpl[] = "/tmp/mic_journal_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  {
    FileBackend backend(dir);
    JournalStore store(backend);
    for (std::uint64_t seq = 1; seq <= 3; ++seq) {
      store.append(sample_record(seq, JournalRecordType::kEstablish));
    }
  }
  {
    FileBackend backend(dir);
    JournalStore store(backend);
    const JournalLoadResult loaded = store.load();
    EXPECT_TRUE(loaded.clean) << loaded.error;
    ASSERT_EQ(loaded.records.size(), 3u);
    expect_equal_records(loaded.records[1],
                         sample_record(2, JournalRecordType::kEstablish));
    for (const std::string& name : backend.list()) backend.remove(name);
  }
  ::rmdir(dir.c_str());
}

// --- segment engine ----------------------------------------------------------

TEST(JournalStoreEngine, FsyncPolicyDrivesTheDurabilityFrontier) {
  {  // every record
    SimBackend backend;
    JournalStore store(backend);
    store.append(sample_record(1, JournalRecordType::kEstablish));
    EXPECT_EQ(store.records_durable(), 1u);
  }
  {  // every N
    SimBackend backend;
    JournalStoreOptions options;
    options.fsync_policy = FsyncPolicy::kEveryN;
    options.fsync_every_n = 3;
    JournalStore store(backend, options);
    store.append(sample_record(1, JournalRecordType::kEstablish));
    store.append(sample_record(2, JournalRecordType::kEstablish));
    EXPECT_EQ(store.records_durable(), 0u);
    store.append(sample_record(3, JournalRecordType::kEstablish));
    EXPECT_EQ(store.records_durable(), 3u);
    store.append(sample_record(4, JournalRecordType::kEstablish));
    EXPECT_EQ(store.records_durable(), 3u);
    store.commit_boundary();  // flushes the pending tail too
    EXPECT_EQ(store.records_durable(), 4u);
  }
  {  // commit boundary
    SimBackend backend;
    JournalStoreOptions options;
    options.fsync_policy = FsyncPolicy::kCommitBoundary;
    JournalStore store(backend, options);
    store.append(sample_record(1, JournalRecordType::kEstablish));
    store.append(sample_record(2, JournalRecordType::kEstablish));
    EXPECT_EQ(store.records_durable(), 0u);
    store.commit_boundary();
    EXPECT_EQ(store.records_durable(), 2u);
    EXPECT_GT(store.syncs_requested(), 0u);
  }
}

TEST(JournalStoreEngine, SegmentsRotateAndCompactionSwapsAtomically) {
  SimBackend backend;
  JournalStoreOptions options;
  options.segment_rotate_bytes = 512;  // tiny: force rotations
  JournalStore store(backend, options);

  std::vector<JournalRecord> live;
  for (std::uint64_t seq = 1; seq <= 12; ++seq) {
    store.append(sample_record(seq, JournalRecordType::kEstablish));
    if (seq > 9) {
      live.push_back(sample_record(seq, JournalRecordType::kSnapshot));
    }
  }
  EXPECT_GT(store.segments_rotated(), 0u);
  EXPECT_GT(store.segment_count(), 1u);
  EXPECT_EQ(store.load().records.size(), 12u);

  store.compact(live);
  EXPECT_EQ(store.compactions(), 1u);
  EXPECT_EQ(store.segment_count(), 1u);
  // Nothing of the scratch file or old segments remains in the backend.
  for (const std::string& name : backend.list()) {
    EXPECT_EQ(name.rfind("seg-", 0), 0u) << name;
  }
  const JournalLoadResult loaded = store.load();
  EXPECT_TRUE(loaded.clean) << loaded.error;
  ASSERT_EQ(loaded.records.size(), live.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    expect_equal_records(loaded.records[i], live[i]);
  }
  // The engine appends past a compaction without skipping a beat.
  store.append(sample_record(13, JournalRecordType::kTeardown));
  EXPECT_EQ(store.load().records.size(), live.size() + 1);
}

/// Forwards every op to an inner SimBackend while recording it, so a test
/// can re-apply an op prefix to a fresh backend and observe the exact
/// on-disk state a crash at that point would leave behind.
class RecordingBackend final : public StorageBackend {
 public:
  struct Op {
    enum class Kind : std::uint8_t { kCreate, kAppend, kSync, kRename, kRemove };
    Kind kind;
    std::string name;
    std::string to;                   // kRename only
    std::vector<std::uint8_t> data;   // kAppend only
  };

  void create(const std::string& name) override {
    ops.push_back({Op::Kind::kCreate, name, {}, {}});
    inner.create(name);
  }
  void append(const std::string& name, const std::uint8_t* data,
              std::size_t size) override {
    ops.push_back({Op::Kind::kAppend, name, {}, {data, data + size}});
    inner.append(name, data, size);
  }
  void sync(const std::string& name) override {
    ops.push_back({Op::Kind::kSync, name, {}, {}});
    inner.sync(name);
  }
  void rename(const std::string& from, const std::string& to) override {
    ops.push_back({Op::Kind::kRename, from, to, {}});
    inner.rename(from, to);
  }
  void remove(const std::string& name) override {
    ops.push_back({Op::Kind::kRemove, name, {}, {}});
    inner.remove(name);
  }
  std::vector<std::string> list() const override { return inner.list(); }
  std::vector<std::uint8_t> read(const std::string& name) const override {
    return inner.read(name);
  }

  /// Rebuild the backend state after the first `count` ops, then power-cut.
  static SimBackend replay_and_crash(const std::vector<Op>& ops,
                                     std::size_t count) {
    SimBackend backend;
    for (std::size_t i = 0; i < count; ++i) {
      const Op& op = ops[i];
      switch (op.kind) {
        case Op::Kind::kCreate: backend.create(op.name); break;
        case Op::Kind::kAppend:
          backend.append(op.name, op.data.data(), op.data.size());
          break;
        case Op::Kind::kSync: backend.sync(op.name); break;
        case Op::Kind::kRename: backend.rename(op.name, op.to); break;
        case Op::Kind::kRemove: backend.remove(op.name); break;
      }
    }
    backend.crash();
    return backend;
  }

  SimBackend inner;
  std::vector<Op> ops;
};

TEST(JournalStoreEngine, CompactionSurvivesACrashAtEveryOp) {
  // The committed image must survive power loss at *any* point inside
  // compact()'s create/append/sync/rename/remove sequence.  The regression
  // this pins down: removing the old segments before renaming the scratch
  // into place left a window where the only copy of the log was a file the
  // next startup discards.
  RecordingBackend recorder;
  JournalStoreOptions options;
  options.segment_rotate_bytes = 512;  // several segments => several removes
  JournalStore store(recorder, options);
  for (std::uint64_t seq = 1; seq <= 4; ++seq) {
    store.append(sample_record(seq, JournalRecordType::kEstablish));
  }
  // Tear down record 2's channel so the old history holds a dead channel:
  // a crash-recovered log must not resurrect it.
  JournalRecord teardown = sample_record(5, JournalRecordType::kTeardown);
  teardown.channel = sample_record(2, JournalRecordType::kEstablish).channel;
  store.append(teardown);
  ASSERT_GT(store.segment_count(), 1u);

  const auto fold = [](const JournalLoadResult& loaded) {
    ChannelJournal journal;
    for (const JournalRecord& record : loaded.records) {
      journal.adopt_record(record);
    }
    return journal.replay();
  };
  const JournalImage expected = fold(store.load());
  ASSERT_EQ(expected.channels.size(), 3u);

  std::vector<JournalRecord> live;
  for (const auto& [id, state] : expected.channels) {
    JournalRecord snapshot;
    snapshot.type = JournalRecordType::kSnapshot;
    snapshot.channel = id;
    snapshot.state = state;
    snapshot.next_channel = expected.next_channel;
    snapshot.next_group = expected.next_group;
    live.push_back(std::move(snapshot));
  }
  const std::size_t ops_before = recorder.ops.size();
  store.compact(live);

  for (std::size_t cut = ops_before; cut <= recorder.ops.size(); ++cut) {
    SimBackend at_crash =
        RecordingBackend::replay_and_crash(recorder.ops, cut);
    JournalStore reopened(at_crash, options);
    const JournalImage image = fold(reopened.load());
    ASSERT_EQ(image.channels.size(), expected.channels.size())
        << "cut=" << cut;
    for (const auto& [id, state] : expected.channels) {
      ASSERT_TRUE(image.channels.contains(id)) << "cut=" << cut;
      EXPECT_TRUE(structurally_equal(image.channels.at(id), state))
          << "cut=" << cut;
    }
    EXPECT_EQ(image.next_channel, expected.next_channel) << "cut=" << cut;
    EXPECT_EQ(image.next_group, expected.next_group) << "cut=" << cut;
  }
}

TEST(JournalStoreEngine, StrayFilesAreNeverAdoptedAsSegments) {
  // Files the engine did not write -- wrong prefix, non-digit suffix, or
  // names too short to even hold "seg-" -- must not corrupt segment
  // accounting or be decoded as journal history.
  SimBackend backend;
  const std::uint8_t junk[] = {0xde, 0xad, 0xbe, 0xef};
  for (const char* name : {"x", "seg", "seg-", "seg-12ab", "notes.txt"}) {
    backend.create(name);
    backend.append(name, junk, sizeof(junk));
    backend.sync(name);
  }
  JournalStore store(backend);
  store.append(sample_record(1, JournalRecordType::kEstablish));
  const JournalLoadResult loaded = store.load();
  EXPECT_TRUE(loaded.clean) << loaded.error;
  ASSERT_EQ(loaded.records.size(), 1u);
  expect_equal_records(loaded.records[0],
                       sample_record(1, JournalRecordType::kEstablish));
  EXPECT_EQ(store.segment_count(), 1u);
}

TEST(JournalStoreEngine, CrashRecoveryDegradesToEndOfLog) {
  SimBackend backend;
  JournalStoreOptions options;
  options.fsync_policy = FsyncPolicy::kCommitBoundary;
  JournalStore store(backend, options);
  store.append(sample_record(1, JournalRecordType::kEstablish));
  store.append(sample_record(2, JournalRecordType::kEstablish));
  store.commit_boundary();
  store.append(sample_record(3, JournalRecordType::kEstablish));

  // Torn tail: a few bytes of record 3's frame survive the power cut.  The
  // scan recovers records 1-2 and reports exactly where the log tore.
  backend.arm_torn_tail(5);
  backend.crash();
  JournalStore reopened(backend, options);
  const JournalLoadResult loaded = reopened.load();
  EXPECT_FALSE(loaded.clean);
  ASSERT_EQ(loaded.records.size(), 2u);
  EXPECT_FALSE(loaded.error.empty());
  EXPECT_EQ(loaded.error_segment.rfind("seg-", 0), 0u);
  EXPECT_GT(loaded.error_offset, 0u);

  // A clean cut at the durable frontier parses clean: end-of-log is not an
  // error when the last record is whole.
  SimBackend backend2;
  JournalStore store2(backend2);
  store2.append(sample_record(1, JournalRecordType::kEstablish));
  backend2.crash();
  JournalStore reopened2(backend2);
  const JournalLoadResult loaded2 = reopened2.load();
  EXPECT_TRUE(loaded2.clean) << loaded2.error;
  EXPECT_EQ(loaded2.records.size(), 1u);
}

// --- ChannelJournal integration ---------------------------------------------

TEST(JournalStoreEngine, JournalShipsOnlyDurableRecords) {
  // The replication contract: with a kCommitBoundary store attached, an
  // appended record reaches the commit listener only at the boundary --
  // and a record the disk never synced is a record no follower ever saw.
  SimBackend backend;
  JournalStoreOptions options;
  options.fsync_policy = FsyncPolicy::kCommitBoundary;
  JournalStore store(backend, options);

  ChannelJournal journal;
  journal.attach_store(&store);
  journal.set_epoch(1);
  std::vector<std::uint64_t> shipped;
  journal.set_commit_listener(
      [&shipped](const JournalRecord& record) { shipped.push_back(record.seq); });

  ChannelState state = sample_record(1, JournalRecordType::kEstablish).state;
  journal.record_establish(state, state.id + 1, 200);
  EXPECT_TRUE(shipped.empty());  // appended, not yet durable
  journal.commit_boundary();
  ASSERT_EQ(shipped.size(), 1u);
  EXPECT_EQ(journal.records_shipped(), 1u);

  journal.record_teardown(state.id);
  EXPECT_EQ(shipped.size(), 1u);
  journal.commit_boundary();
  EXPECT_EQ(shipped.size(), 2u);

  // A late subscriber catches up on the committed prefix immediately.
  std::vector<std::uint64_t> late;
  journal.set_commit_listener(
      [&late](const JournalRecord& record) { late.push_back(record.seq); });
  EXPECT_EQ(late, shipped);
}

TEST(JournalStoreEngine, ControllerJournalPersistsAndReloads) {
  // End-to-end with a live fabric: attach a store to the MC's journal,
  // establish real channels, then rebuild a journal purely from the stored
  // bytes and check it replays to the same image the MC carries.
  Fabric fabric;
  SimBackend backend;
  JournalStore store(backend);
  fabric.mc().journal().attach_store(&store);

  MicServer server(fabric.host(12), 7000, fabric.rng());
  server.set_on_channel([](MicServerChannel&) {});
  MicChannelOptions o;
  o.responder_ip = fabric.ip(12);
  o.responder_port = 7000;
  MicChannel c1(fabric.host(0), fabric.mc(), o, fabric.rng());
  MicChannel c2(fabric.host(3), fabric.mc(), o, fabric.rng());
  fabric.simulator().run_until();
  ASSERT_TRUE(c1.ready() && c2.ready());

  const JournalLoadResult loaded = store.load();
  EXPECT_TRUE(loaded.clean) << loaded.error;
  ChannelJournal rebuilt;
  for (const JournalRecord& record : loaded.records) {
    rebuilt.adopt_record(record);
  }
  const JournalImage from_disk = rebuilt.replay();
  const JournalImage from_memory = fabric.mc().journal().replay();
  ASSERT_EQ(from_disk.channels.size(), from_memory.channels.size());
  for (const auto& [id, state] : from_memory.channels) {
    ASSERT_TRUE(from_disk.channels.contains(id));
    EXPECT_TRUE(structurally_equal(from_disk.channels.at(id), state));
  }
  EXPECT_EQ(from_disk.next_channel, from_memory.next_channel);
  EXPECT_EQ(from_disk.next_group, from_memory.next_group);
  EXPECT_EQ(from_disk.epoch, from_memory.epoch);
}

}  // namespace
}  // namespace mic::core
