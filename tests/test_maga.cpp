// Property tests for MAGA: exact invertibility, flow-ID separation,
// label-class partitioning (DESIGN.md invariants MAGA-1..3).
#include <gtest/gtest.h>

#include <set>

#include "core/maga.hpp"
#include "core/maga_registry.hpp"
#include "topology/fattree.hpp"

namespace mic::core {
namespace {

// Parameterized across seeds: every sampled parameter set must satisfy the
// algebraic properties.
class MagaProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MagaProperty, Maga3InverseExact) {
  Rng rng(GetParam());
  const Maga3 f = Maga3::sample(rng);
  for (int trial = 0; trial < 200; ++trial) {
    const auto x = static_cast<std::uint32_t>(rng.next());
    const auto y = static_cast<std::uint32_t>(rng.next());
    const auto v = static_cast<std::uint32_t>(rng.next());
    const std::uint32_t z = f.invert_z(v, x, y);
    EXPECT_EQ(f.value(x, y, z), v);
  }
}

TEST_P(MagaProperty, Maga3BijectiveInZ) {
  Rng rng(GetParam());
  const Maga3 f = Maga3::sample(rng);
  const auto x = static_cast<std::uint32_t>(rng.next());
  const auto y = static_cast<std::uint32_t>(rng.next());
  std::set<std::uint32_t> values;
  for (std::uint32_t z = 0; z < 4096; ++z) {
    values.insert(f.value(x, y, z));
  }
  EXPECT_EQ(values.size(), 4096u);  // injective on the sampled prefix
}

TEST_P(MagaProperty, MagaFInverseExact) {
  Rng rng(GetParam());
  const MagaF f = MagaF::sample(rng);
  for (int trial = 0; trial < 200; ++trial) {
    const auto alpha = static_cast<std::uint32_t>(rng.next());
    const auto beta = static_cast<std::uint32_t>(rng.next());
    const auto gamma = static_cast<std::uint16_t>(rng.next());
    const auto v = static_cast<std::uint16_t>(rng.next());
    const std::uint16_t delta = f.invert_delta(v, alpha, beta, gamma);
    EXPECT_EQ(f.value(alpha, beta, gamma, delta), v);
  }
}

TEST_P(MagaProperty, MagaFDifferentIdsNeverCollide) {
  // Tuples generated for different flow IDs can never be equal: equal
  // tuples would have equal hash values.
  Rng rng(GetParam());
  const MagaF f = MagaF::sample(rng);
  for (int trial = 0; trial < 100; ++trial) {
    const auto alpha = static_cast<std::uint32_t>(rng.next());
    const auto beta = static_cast<std::uint32_t>(rng.next());
    const auto gamma = static_cast<std::uint16_t>(rng.next());
    const auto id1 = static_cast<std::uint16_t>(rng.next());
    auto id2 = static_cast<std::uint16_t>(rng.next());
    if (id2 == id1) ++id2;
    EXPECT_NE(f.invert_delta(id1, alpha, beta, gamma),
              f.invert_delta(id2, alpha, beta, gamma));
  }
}

TEST_P(MagaProperty, ClassifierSampleHitsClass) {
  Rng rng(GetParam());
  const MplsClassifier g = MplsClassifier::sample(rng);
  for (int cls = 0; cls < 256; ++cls) {
    for (int trial = 0; trial < 8; ++trial) {
      const std::uint16_t label =
          g.sample_label_half(static_cast<std::uint8_t>(cls), rng);
      EXPECT_EQ(g.classify(label), cls);
    }
  }
}

TEST_P(MagaProperty, ClassifierPartitionsLabelSpace) {
  // Every one of the 65536 label halves belongs to exactly one class, and
  // the classes are balanced (256 labels each) because h is bijective.
  Rng rng(GetParam());
  const MplsClassifier g = MplsClassifier::sample(rng);
  std::array<int, 256> counts{};
  for (std::uint32_t label = 0; label <= 0xFFFF; ++label) {
    ++counts[g.classify(static_cast<std::uint16_t>(label))];
  }
  for (const int count : counts) EXPECT_EQ(count, 256);
}

TEST_P(MagaProperty, CrossMnTuplesDisjointUnderRandomParameters) {
  // Randomized MixKey parameters end to end: the registry's seed drives
  // every sampled hash (per-MN F, the global classifier g), so each seed
  // exercises a fresh parameter set.  Two guarantees of Sec IV-B3 must hold
  // for all of them: (a) on one MN, tuples of distinct flow IDs never
  // collide (they hash to different IDs under that MN's F), and (b) the
  // g() label partition keeps tuples disjoint across MNs -- every label an
  // MN uses classifies to its own S_ID, so no two MNs can ever emit an
  // equal tuple.
  Rng seeder(GetParam() * 0x9e3779b97f4a7c15ULL + 1);
  MagaRegistry registry{Rng(seeder.next())};
  constexpr topo::NodeId kMns[] = {11, 22, 33, 44};
  for (const topo::NodeId mn : kMns) registry.register_switch(mn);

  const std::vector<net::Ipv4> candidates{
      net::Ipv4(10, 0, 0, 2), net::Ipv4(10, 0, 0, 3), net::Ipv4(10, 1, 0, 2)};
  const FlowId flows[] = {registry.allocate_flow_id(),
                          registry.allocate_flow_id(),
                          registry.allocate_flow_id()};

  struct Generated {
    topo::NodeId mn;
    FlowId flow;
    MTuple tuple;
  };
  std::vector<Generated> all;
  for (const topo::NodeId mn : kMns) {
    for (const FlowId flow : flows) {
      for (int i = 0; i < 20; ++i) {
        const MTuple t = registry.generate(mn, flow, candidates, candidates);
        EXPECT_EQ(registry.flow_id_of(mn, t), flow);
        EXPECT_EQ(registry.class_of_label(t.mpls), registry.s_id(mn));
        all.push_back({mn, flow, t});
      }
    }
  }

  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      const Generated& a = all[i];
      const Generated& b = all[j];
      if (a.mn == b.mn && a.flow != b.flow) {
        EXPECT_FALSE(a.tuple == b.tuple)
            << "same-MN collision between flows " << a.flow << " and "
            << b.flow;
      }
      if (a.mn != b.mn) {
        // Disjoint label classes: not just unequal tuples, unequal labels.
        EXPECT_NE(a.tuple.mpls, b.tuple.mpls)
            << "MNs " << a.mn << " and " << b.mn << " shared a label";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MagaProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// --- the registry ---------------------------------------------------------------

TEST(MagaRegistry, FlowIdAllocationRecycles) {
  MagaRegistry registry{Rng(7)};
  const FlowId a = registry.allocate_flow_id();
  const FlowId b = registry.allocate_flow_id();
  EXPECT_NE(a, b);
  EXPECT_NE(a, kInvalidFlowId);
  registry.release_flow_id(a);
  const FlowId c = registry.allocate_flow_id();
  EXPECT_EQ(c, a);  // recovered, as the paper prescribes
  EXPECT_EQ(registry.active_flow_count(), 2u);
}

TEST(MagaRegistry, SIdsUniqueAcrossSwitchesAndDistinctFromCId) {
  MagaRegistry registry{Rng(11)};
  std::set<std::uint8_t> ids{registry.c_id()};
  for (topo::NodeId sw = 100; sw < 150; ++sw) {
    registry.register_switch(sw);
    EXPECT_TRUE(ids.insert(registry.s_id(sw)).second)
        << "duplicate S_ID for switch " << sw;
  }
}

TEST(MagaRegistry, GeneratedTuplesSatisfyAllConstraints) {
  MagaRegistry registry{Rng(13)};
  registry.register_switch(1);
  const std::vector<net::Ipv4> srcs{net::Ipv4(10, 0, 0, 2),
                                    net::Ipv4(10, 0, 0, 3)};
  const std::vector<net::Ipv4> dsts{net::Ipv4(10, 1, 0, 2),
                                    net::Ipv4(10, 1, 0, 3)};
  const FlowId flow = registry.allocate_flow_id();
  for (int trial = 0; trial < 100; ++trial) {
    const MTuple t = registry.generate(1, flow, srcs, dsts);
    // MAGA-1: hashes to the owning flow id under the MN's function.
    EXPECT_EQ(registry.flow_id_of(1, t), flow);
    // Label class is the MN's S_ID.
    EXPECT_EQ(registry.class_of_label(t.mpls), registry.s_id(1));
    // Addresses drawn from the restriction sets.
    EXPECT_TRUE(t.src == srcs[0] || t.src == srcs[1]);
    EXPECT_TRUE(t.dst == dsts[0] || t.dst == dsts[1]);
    EXPECT_NE(t.mpls, net::kNoMpls);
  }
}

TEST(MagaRegistry, TuplesOfDistinctFlowsDifferOnOneMn) {
  // MAGA-2.
  MagaRegistry registry{Rng(17)};
  registry.register_switch(1);
  const std::vector<net::Ipv4> candidates{net::Ipv4(10, 0, 0, 2)};
  const FlowId f1 = registry.allocate_flow_id();
  const FlowId f2 = registry.allocate_flow_id();
  std::vector<MTuple> tuples1, tuples2;
  for (int i = 0; i < 50; ++i) {
    tuples1.push_back(registry.generate(1, f1, candidates, candidates));
    tuples2.push_back(registry.generate(1, f2, candidates, candidates));
  }
  for (const auto& a : tuples1) {
    for (const auto& b : tuples2) {
      EXPECT_FALSE(a == b);
    }
  }
}

TEST(MagaRegistry, TuplesAcrossMnsNeverShareLabels) {
  // MAGA-3: disjoint label classes per MN imply disjoint tuples.
  MagaRegistry registry{Rng(19)};
  registry.register_switch(1);
  registry.register_switch(2);
  const std::vector<net::Ipv4> candidates{net::Ipv4(10, 0, 0, 2)};
  const FlowId flow = registry.allocate_flow_id();
  std::set<net::MplsLabel> labels1, labels2;
  for (int i = 0; i < 100; ++i) {
    labels1.insert(registry.generate(1, flow, candidates, candidates).mpls);
    labels2.insert(registry.generate(2, flow, candidates, candidates).mpls);
  }
  for (const auto label : labels1) EXPECT_FALSE(labels2.contains(label));
}

TEST(MagaRegistry, CfLabelsClassifyAsCommon) {
  MagaRegistry registry{Rng(23)};
  registry.register_switch(1);
  for (int i = 0; i < 50; ++i) {
    const net::MplsLabel label = registry.sample_cf_label();
    EXPECT_EQ(registry.class_of_label(label), registry.c_id());
    EXPECT_NE(registry.class_of_label(label), registry.s_id(1));
    EXPECT_NE(label, net::kNoMpls);
  }
}

TEST(MagaRegistry, ReleaseTuplesAllowsReuse) {
  MagaRegistry registry{Rng(29)};
  registry.register_switch(1);
  const std::vector<net::Ipv4> candidates{net::Ipv4(10, 0, 0, 2)};
  const FlowId flow = registry.allocate_flow_id();
  std::vector<MTuple> tuples;
  for (int i = 0; i < 10; ++i) {
    tuples.push_back(registry.generate(1, flow, candidates, candidates));
  }
  registry.release_tuples(1, tuples);  // no assertion; bookkeeping shrinks
  SUCCEED();
}

}  // namespace
}  // namespace mic::core
