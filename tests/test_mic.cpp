// End-to-end tests of the MIC system: channel establishment, in-network
// rewriting, unlinkability on the wire, collision avoidance, hidden
// services, multiple m-flows, MIC-SSL, partial multicast, teardown, reuse.
#include <gtest/gtest.h>

#include <set>

#include "anonymity/observer.hpp"
#include "core/collision_audit.hpp"
#include "core/fabric.hpp"
#include "core/mic_client.hpp"
#include "core/socket_api.hpp"

namespace mic::core {
namespace {

std::vector<std::uint8_t> bytes_of(std::string_view s) {
  return {s.begin(), s.end()};
}

struct MicBed {
  explicit MicBed(FabricOptions options = {}) : fabric(options) {}

  /// A server host listening for MIC channels on port 7000.
  MicServer& serve(std::size_t host_index, bool use_ssl = false) {
    server = std::make_unique<MicServer>(fabric.host(host_index), 7000,
                                         fabric.rng(), use_ssl);
    return *server;
  }

  MicChannelOptions options_to(std::size_t host_index) {
    MicChannelOptions options;
    options.responder_ip = fabric.ip(host_index);
    options.responder_port = 7000;
    return options;
  }

  Fabric fabric;
  std::unique_ptr<MicServer> server;
};

TEST(MicEstablish, PlanHasRequestedShape) {
  MicBed bed;
  EstablishRequest request;
  request.initiator_ip = bed.fabric.ip(0);
  request.responder_ip = bed.fabric.ip(12);  // different pod
  request.responder_port = 7000;
  request.flow_count = 2;
  request.mn_count = 3;
  request.initiator_sports = {40001, 40002};

  const EstablishResult result = bed.fabric.mc().establish(request);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.entries.size(), 2u);

  const ChannelState* state = bed.fabric.mc().channel(result.channel);
  ASSERT_NE(state, nullptr);
  ASSERT_EQ(state->flows.size(), 2u);
  for (const MFlowPlan& plan : state->flows) {
    EXPECT_EQ(plan.mn_positions.size(), 3u);
    EXPECT_TRUE(std::is_sorted(plan.mn_positions.begin(),
                               plan.mn_positions.end()));
    EXPECT_EQ(plan.forward.size(), 4u);
    EXPECT_EQ(plan.reverse.size(), 4u);
    // First segment: real initiator, fake destination.
    EXPECT_EQ(plan.forward[0].src, bed.fabric.ip(0));
    EXPECT_NE(plan.forward[0].dst, bed.fabric.ip(12));
    // Last segment: fake source, real responder.
    EXPECT_NE(plan.forward[3].src, bed.fabric.ip(0));
    EXPECT_EQ(plan.forward[3].dst, bed.fabric.ip(12));
    // Middle segments carry MF labels.
    EXPECT_NE(plan.forward[1].mpls, net::kNoMpls);
    EXPECT_NE(plan.forward[2].mpls, net::kNoMpls);
    EXPECT_EQ(plan.forward[3].mpls, net::kNoMpls);
  }
  // The two m-flows use distinct flow IDs and entries.
  EXPECT_NE(state->flows[0].flow_id, state->flows[1].flow_id);
  EXPECT_FALSE(result.entries[0].ip == result.entries[1].ip &&
               result.entries[0].port == result.entries[1].port);
}

TEST(MicEstablish, LongPathWhenMnCountExceedsShortest) {
  MicBed bed;
  EstablishRequest request;
  request.initiator_ip = bed.fabric.ip(0);
  request.responder_ip = bed.fabric.ip(1);  // same edge switch: 1 switch away
  request.responder_port = 7000;
  request.flow_count = 1;
  request.mn_count = 3;
  request.initiator_sports = {40001};
  const EstablishResult result = bed.fabric.mc().establish(request);
  ASSERT_TRUE(result.ok) << result.error;
  const ChannelState* state = bed.fabric.mc().channel(result.channel);
  ASSERT_EQ(state->flows.size(), 1u);
  EXPECT_GE(state->flows[0].path.size() - 2, 3u);
}

TEST(MicEstablish, RejectsMalformedRequests) {
  MicBed bed;
  EstablishRequest request;
  request.initiator_ip = bed.fabric.ip(0);
  request.responder_ip = bed.fabric.ip(0);  // self
  request.responder_port = 7000;
  request.initiator_sports = {40001};
  EXPECT_FALSE(bed.fabric.mc().establish(request).ok);

  request.responder_ip = bed.fabric.ip(1);
  request.flow_count = 2;  // but only one sport
  EXPECT_FALSE(bed.fabric.mc().establish(request).ok);

  request.flow_count = 1;
  request.responder_ip = net::Ipv4(192, 168, 0, 1);  // unknown host
  EXPECT_FALSE(bed.fabric.mc().establish(request).ok);

  EstablishRequest svc;
  svc.initiator_ip = bed.fabric.ip(0);
  svc.service_name = "no-such-service";
  svc.initiator_sports = {40001};
  EXPECT_FALSE(bed.fabric.mc().establish(svc).ok);
}

TEST(MicEndToEnd, DataRoundTripsThroughMimicChannel) {
  MicBed bed;
  bed.serve(12);
  std::string at_server;
  std::string at_client;
  bed.server->set_on_channel([&](MicServerChannel& channel) {
    channel.set_on_data([&](const transport::ChunkView& view) {
      at_server.append(view.bytes.begin(), view.bytes.end());
      if (at_server == "hello anonymous world") {
        channel.send(transport::Chunk::real(bytes_of("ack from hidden side")));
      }
    });
  });

  MicChannel channel(bed.fabric.host(0), bed.fabric.mc(), bed.options_to(12),
                     bed.fabric.rng());
  channel.set_on_data([&](const transport::ChunkView& view) {
    at_client.append(view.bytes.begin(), view.bytes.end());
  });
  channel.send(transport::Chunk::real(bytes_of("hello anonymous world")));
  bed.fabric.simulator().run_until();

  EXPECT_EQ(at_server, "hello anonymous world");
  EXPECT_EQ(at_client, "ack from hidden side");
  EXPECT_FALSE(channel.failed());
  EXPECT_GT(channel.setup_time(), 0u);
}

TEST(MicEndToEnd, NoWirePacketLinksInitiatorAndResponder) {
  // ROUTE-1 / unlinkability: tap EVERY link; no single packet may carry
  // both real endpoint addresses.
  MicBed bed;
  bed.serve(12);
  const net::Ipv4 init_ip = bed.fabric.ip(0);
  const net::Ipv4 resp_ip = bed.fabric.ip(12);

  std::uint64_t linking_packets = 0;
  std::uint64_t total_packets = 0;
  bed.fabric.network().add_global_tap(
      [&](topo::LinkId, topo::NodeId, topo::NodeId, const net::Packet& packet,
          sim::SimTime) {
        ++total_packets;
        const bool touches_init =
            packet.src == init_ip || packet.dst == init_ip;
        const bool touches_resp =
            packet.src == resp_ip || packet.dst == resp_ip;
        if (touches_init && touches_resp) ++linking_packets;
      });

  MicChannel channel(bed.fabric.host(0), bed.fabric.mc(), bed.options_to(12),
                     bed.fabric.rng());
  channel.send(transport::Chunk::virtual_bytes(256 * 1024));
  bed.fabric.simulator().run_until();

  EXPECT_GT(total_packets, 100u);
  EXPECT_EQ(linking_packets, 0u);
}

TEST(MicEndToEnd, ResponderSeesPresentedAddressNotInitiator) {
  MicBed bed;
  bed.serve(12);
  anonymity::Observer observer;
  // Tap the responder's access link.
  const auto resp_node = bed.fabric.host_node(12);
  observer.tap_link(bed.fabric.network(),
                    bed.fabric.network().graph().neighbors(resp_node)[0].link);

  MicChannel channel(bed.fabric.host(0), bed.fabric.mc(), bed.options_to(12),
                     bed.fabric.rng());
  channel.send(transport::Chunk::real(bytes_of("payload")));
  bed.fabric.simulator().run_until();

  ASSERT_FALSE(observer.records().empty());
  for (const auto& record : observer.records()) {
    // Initiator's address never appears at the responder.
    EXPECT_NE(record.src, bed.fabric.ip(0));
    EXPECT_NE(record.dst, bed.fabric.ip(0));
    // The last MN popped the label before delivery.
    EXPECT_EQ(record.mpls, net::kNoMpls);
  }
}

TEST(MicEndToEnd, CollisionAuditCleanWithManyChannels) {
  MicBed bed;
  Rng rng(1234);
  std::vector<ChannelId> ids;
  for (int i = 0; i < 20; ++i) {
    EstablishRequest request;
    const std::size_t a = rng.below(16);
    std::size_t b = a;
    while (b == a) b = rng.below(16);
    request.initiator_ip = bed.fabric.ip(a);
    request.responder_ip = bed.fabric.ip(b);
    request.responder_port = 7000;
    request.flow_count = 1 + static_cast<int>(rng.below(3));
    request.mn_count = 1 + static_cast<int>(rng.below(5));
    for (int f = 0; f < request.flow_count; ++f) {
      request.initiator_sports.push_back(
          static_cast<net::L4Port>(41000 + 10 * i + f));
    }
    const auto result = bed.fabric.mc().establish(request);
    ASSERT_TRUE(result.ok) << result.error;
    ids.push_back(result.channel);
  }
  const AuditReport report = audit_collisions(bed.fabric.mc());
  for (const auto& violation : report.violations) {
    ADD_FAILURE() << violation;
  }
  EXPECT_TRUE(report.ok);
  EXPECT_GT(report.mflow_rules, 0u);

  // Tear half down; audit stays clean.
  for (std::size_t i = 0; i < ids.size(); i += 2) {
    bed.fabric.mc().teardown(ids[i]);
  }
  EXPECT_TRUE(audit_collisions(bed.fabric.mc()).ok);
}

TEST(MicEndToEnd, TeardownRemovesAllRules) {
  MicBed bed;
  auto count_rules = [&] {
    std::size_t rules = 0;
    for (const topo::NodeId sw : bed.fabric.network().graph().switches()) {
      rules += bed.fabric.mc().switch_at(sw)->table().rule_count();
    }
    return rules;
  };
  const std::size_t baseline = count_rules();

  EstablishRequest request;
  request.initiator_ip = bed.fabric.ip(0);
  request.responder_ip = bed.fabric.ip(12);
  request.responder_port = 7000;
  request.initiator_sports = {40001};
  request.multicast_decoys = 2;
  const auto result = bed.fabric.mc().establish(request);
  ASSERT_TRUE(result.ok);
  EXPECT_GT(count_rules(), baseline);

  bed.fabric.mc().teardown(result.channel);
  EXPECT_EQ(count_rules(), baseline);
  EXPECT_EQ(bed.fabric.mc().registry().active_flow_count(), 0u);
  EXPECT_EQ(bed.fabric.mc().channel(result.channel), nullptr);
}

TEST(MicEndToEnd, HiddenServiceReachableByNickname) {
  MicBed bed;
  bed.serve(9);
  bed.fabric.mc().register_hidden_service("metadata-primary",
                                          bed.fabric.ip(9), 7000);
  std::string at_server;
  bed.server->set_on_channel([&](MicServerChannel& channel) {
    channel.set_on_data([&](const transport::ChunkView& view) {
      at_server.append(view.bytes.begin(), view.bytes.end());
    });
  });

  MicChannelOptions options;
  options.service_name = "metadata-primary";
  MicChannel channel(bed.fabric.host(3), bed.fabric.mc(), options,
                     bed.fabric.rng());
  channel.send(transport::Chunk::real(bytes_of("lookup /")));
  bed.fabric.simulator().run_until();
  EXPECT_EQ(at_server, "lookup /");
  // The entry address never reveals the hidden server.
  const ChannelState* state = bed.fabric.mc().channel(channel.id());
  ASSERT_NE(state, nullptr);
  EXPECT_NE(state->flows[0].forward[0].dst, bed.fabric.ip(9));
}

TEST(MicEndToEnd, MultiFlowStreamReassemblesInOrder) {
  MicBed bed;
  bed.serve(12);
  // A recognizable 200 KB pattern.
  std::vector<std::uint8_t> payload(200 * 1024);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 31 + (i >> 8));
  }
  std::vector<std::uint8_t> received;
  bed.server->set_on_channel([&](MicServerChannel& channel) {
    channel.set_on_data([&](const transport::ChunkView& view) {
      received.insert(received.end(), view.bytes.begin(), view.bytes.end());
    });
  });

  MicChannelOptions options = bed.options_to(12);
  options.flow_count = 4;
  MicChannel channel(bed.fabric.host(0), bed.fabric.mc(), options,
                     bed.fabric.rng());
  channel.send(transport::Chunk::real(payload));
  bed.fabric.simulator().run_until();

  ASSERT_EQ(received.size(), payload.size());
  EXPECT_EQ(received, payload);
  // Striping actually used multiple flows.
  int used = 0;
  for (int f = 0; f < channel.flow_count(); ++f) {
    if (channel.bytes_sent_on_flow(static_cast<std::size_t>(f)) > 0) ++used;
  }
  EXPECT_GE(used, 2);
}

TEST(MicEndToEnd, MicSslEncryptsEndToEnd) {
  MicBed bed;
  bed.serve(12, /*use_ssl=*/true);
  std::string at_server;
  bed.server->set_on_channel([&](MicServerChannel& channel) {
    channel.set_on_data([&](const transport::ChunkView& view) {
      at_server.append(view.bytes.begin(), view.bytes.end());
    });
  });

  // Record all real payload bytes crossing the fabric.
  std::vector<std::uint8_t> wire;
  bed.fabric.network().add_global_tap(
      [&](topo::LinkId, topo::NodeId, topo::NodeId, const net::Packet& packet,
          sim::SimTime) {
        if (packet.payload != nullptr) {
          wire.insert(wire.end(), packet.payload->begin(),
                      packet.payload->end());
        }
      });

  MicChannelOptions options = bed.options_to(12);
  options.use_ssl = true;
  MicChannel channel(bed.fabric.host(0), bed.fabric.mc(), options,
                     bed.fabric.rng());
  const std::string secret = "MIC-SSL-SECRET-PAYLOAD-42";
  channel.send(transport::Chunk::real(bytes_of(secret)));
  bed.fabric.simulator().run_until();

  EXPECT_EQ(at_server, secret);
  const std::string wire_str(wire.begin(), wire.end());
  EXPECT_EQ(wire_str.find(secret), std::string::npos);
}

TEST(MicEndToEnd, PartialMulticastDeliversExactlyOneCopy) {
  MicBed bed;
  bed.serve(12);
  std::uint64_t received = 0;
  bed.server->set_on_channel([&](MicServerChannel& channel) {
    channel.set_on_data([&](const transport::ChunkView& view) {
      received += view.length;
    });
  });

  MicChannelOptions options = bed.options_to(12);
  options.multicast_decoys = 2;
  MicChannel channel(bed.fabric.host(0), bed.fabric.mc(), options,
                     bed.fabric.rng());
  channel.send(transport::Chunk::virtual_bytes(64 * 1024));
  bed.fabric.simulator().run_until();

  // Exactly the sent bytes arrive -- decoys died at their drop rules.
  EXPECT_EQ(received, 64u * 1024u);

  // The decoy drop rules saw traffic.
  std::uint64_t decoy_drops = 0;
  for (const topo::NodeId sw : bed.fabric.network().graph().switches()) {
    for (const auto& rule : bed.fabric.mc().switch_at(sw)->table().rules()) {
      if (rule.priority == ctrl::kPriorityDecoyDrop) {
        decoy_drops += rule.packet_count;
      }
    }
  }
  EXPECT_GT(decoy_drops, 0u);
}

TEST(MicEndToEnd, ChannelReuseMarksIdle) {
  MicBed bed;
  bed.serve(12);
  MicChannel channel(bed.fabric.host(0), bed.fabric.mc(), bed.options_to(12),
                     bed.fabric.rng());
  bed.fabric.simulator().run_until();
  ASSERT_FALSE(channel.failed());

  channel.release_for_reuse();
  bed.fabric.simulator().run_until();
  const ChannelState* state = bed.fabric.mc().channel(channel.id());
  ASSERT_NE(state, nullptr);
  EXPECT_TRUE(state->idle);

  channel.reacquire();
  bed.fabric.simulator().run_until();
  EXPECT_FALSE(bed.fabric.mc().channel(channel.id())->idle);
}

TEST(MicEndToEnd, CommonFlowsCoexistWithMimicFlows) {
  // A common (non-anonymous) TCP flow and an m-flow share the fabric; both
  // deliver correctly (the CF/MF label split prevents rule capture).
  MicBed bed;
  bed.serve(12);
  std::uint64_t mic_received = 0;
  bed.server->set_on_channel([&](MicServerChannel& channel) {
    channel.set_on_data([&](const transport::ChunkView& view) {
      mic_received += view.length;
    });
  });

  std::uint64_t common_received = 0;
  bed.fabric.host(13).listen(6000, [&](transport::TcpConnection& conn) {
    conn.set_on_data([&](const transport::ChunkView& view) {
      common_received += view.length;
    });
  });
  auto& common = bed.fabric.host(1).connect(bed.fabric.ip(13), 6000);
  common.set_on_ready(
      [&] { common.send(transport::Chunk::virtual_bytes(512 * 1024)); });

  MicChannel channel(bed.fabric.host(0), bed.fabric.mc(), bed.options_to(12),
                     bed.fabric.rng());
  channel.send(transport::Chunk::virtual_bytes(512 * 1024));
  bed.fabric.simulator().run_until();

  EXPECT_EQ(mic_received, 512u * 1024u);
  EXPECT_EQ(common_received, 512u * 1024u);
  EXPECT_TRUE(audit_collisions(bed.fabric.mc()).ok);
}

TEST(MicEndToEnd, SetupTimeIncludesControlRoundTrip) {
  MicBed bed;
  bed.serve(12);
  MicChannel channel(bed.fabric.host(0), bed.fabric.mc(), bed.options_to(12),
                     bed.fabric.rng());
  bed.fabric.simulator().run_until();
  ASSERT_TRUE(channel.ready());
  // At least two control-channel traversals plus the TCP handshake.
  EXPECT_GT(channel.setup_time(),
            2 * bed.fabric.mc().mic_config().control_latency);
}

TEST(MicEndToEnd, PaperFigure2Example) {
  // The paper's didactic example (Fig. 2): Alice and Bob joined by a line
  // of three switches; every switch is an MN; the intermediate switches
  // are "not aware of the real 'src' ... and 'dst'".
  // Bystander hosts populate the 10.0.0.0/24 so the MC has cover addresses
  // to mimic (the figure's .2-.7) -- with only two hosts in the whole
  // network there would be nothing to hide behind.
  static topo::Graph line;
  static const topo::NodeId alice_node = line.add_node(topo::NodeKind::kHost);
  static const topo::NodeId s1 = line.add_node(topo::NodeKind::kSwitch);
  static const topo::NodeId s2 = line.add_node(topo::NodeKind::kSwitch);
  static const topo::NodeId s3 = line.add_node(topo::NodeKind::kSwitch);
  static const topo::NodeId bob_node = line.add_node(topo::NodeKind::kHost);
  static std::vector<topo::NodeId> bystanders;
  static const bool wired = [] {
    line.add_link(alice_node, s1);
    line.add_link(s1, s2);
    line.add_link(s2, s3);
    line.add_link(s3, bob_node);
    for (const topo::NodeId sw : {s1, s1, s2, s2, s3, s3}) {
      const topo::NodeId h = line.add_node(topo::NodeKind::kHost);
      bystanders.push_back(h);
      line.add_link(sw, h);
    }
    return true;
  }();
  (void)wired;

  const net::Ipv4 alice_ip(10, 0, 0, 1);
  const net::Ipv4 bob_ip(10, 0, 0, 8);
  std::vector<std::pair<topo::NodeId, net::Ipv4>> addrs{
      {alice_node, alice_ip}, {bob_node, bob_ip}};
  for (std::size_t i = 0; i < bystanders.size(); ++i) {
    addrs.push_back({bystanders[i], net::Ipv4(10, 0, 0, 2 + static_cast<int>(i))});
  }
  GenericFabric fabric(line, addrs);

  MicServer server(fabric.host(1), 7000, fabric.rng());
  std::string at_bob;
  server.set_on_channel([&](MicServerChannel& channel) {
    channel.set_on_data([&](const transport::ChunkView& view) {
      at_bob.append(view.bytes.begin(), view.bytes.end());
    });
  });

  MicChannelOptions options;
  options.responder_ip = bob_ip;
  options.responder_port = 7000;
  options.mn_count = 3;  // all three switches mimic, as in the figure
  MicChannel channel(fabric.host(0), fabric.mc(), options, fabric.rng());

  // Record the headers on each of the four links.
  std::vector<std::pair<net::Ipv4, net::Ipv4>> seen(4);
  fabric.network().add_global_tap(
      [&](topo::LinkId link, topo::NodeId, topo::NodeId, const net::Packet& p,
          sim::SimTime) {
        if (p.payload_bytes() > 0) seen[link] = {p.src, p.dst};
      });

  channel.send(transport::Chunk::real({'h', 'i', ' ', 'b', 'o', 'b'}));
  fabric.simulator().run_until();
  EXPECT_EQ(at_bob, "hi bob");

  // Link 0 (Alice -> S1): real src, fake dst.  Link 3 (S3 -> Bob): fake
  // src, real dst.  The middle links carry neither real address.
  EXPECT_EQ(seen[0].first, alice_ip);
  EXPECT_NE(seen[0].second, bob_ip);
  EXPECT_NE(seen[3].first, alice_ip);
  EXPECT_EQ(seen[3].second, bob_ip);
  for (int link = 1; link <= 2; ++link) {
    EXPECT_NE(seen[static_cast<std::size_t>(link)].first, alice_ip);
    EXPECT_NE(seen[static_cast<std::size_t>(link)].second, bob_ip);
  }
  // Three MNs => the header changes on every hop.
  EXPECT_NE(seen[0], seen[1]);
  EXPECT_NE(seen[1], seen[2]);
  EXPECT_NE(seen[2], seen[3]);
}

TEST(CollisionAudit, DetectsForeignMFlowRule) {
  // Negative test: the audit must actually catch violations.  Install a
  // hand-crafted "m-flow" rule whose label was never produced by the MC.
  MicBed bed;
  switchd::FlowRule rogue;
  rogue.priority = ctrl::kPriorityMFlow;
  rogue.match.src = net::Ipv4(10, 0, 0, 2);
  rogue.match.dst = net::Ipv4(10, 1, 0, 2);
  rogue.match.sport = 1111;
  rogue.match.dport = 2222;
  rogue.match.mpls = 0x12345678;
  rogue.actions = {switchd::Output{0}};
  rogue.cookie = 0xBAD;
  const topo::NodeId sw = bed.fabric.fattree().core_switches()[0];
  bed.fabric.mc().install_rule(sw, rogue, /*immediate=*/true);

  const AuditReport report = audit_collisions(bed.fabric.mc());
  EXPECT_FALSE(report.ok);
  ASSERT_FALSE(report.violations.empty());
}

TEST(CollisionAudit, DetectsRewriteToInactiveFlow) {
  // A stale rewrite rule (flow ID no longer active) must be flagged.
  MicBed bed;
  EstablishRequest request;
  request.initiator_ip = bed.fabric.ip(0);
  request.responder_ip = bed.fabric.ip(12);
  request.responder_port = 7000;
  request.initiator_sports = {40001};
  const auto result = bed.fabric.mc().establish(request);
  ASSERT_TRUE(result.ok);

  // Clone one MN rewrite rule under a different cookie, then tear the
  // channel down: the clone's target flow ID is no longer active.
  const auto* state = bed.fabric.mc().channel(result.channel);
  const auto& plan = state->flows[0];
  const topo::NodeId mn = plan.path[plan.mn_positions[0]];
  switchd::FlowRule clone;
  for (const auto& rule : bed.fabric.mc().switch_at(mn)->table().rules()) {
    if (rule.cookie == result.channel &&
        switchd::count_set_fields(rule.actions) > 0) {
      clone = rule;
      break;
    }
  }
  clone.cookie = 0xC10E;
  clone.priority = static_cast<std::uint16_t>(clone.priority + 1);
  bed.fabric.mc().install_rule(mn, clone, /*immediate=*/true);
  bed.fabric.mc().teardown(result.channel);

  EXPECT_FALSE(audit_collisions(bed.fabric.mc()).ok);
}


TEST(SocketApi, ConnectSendRecvClose) {
  MicBed bed;
  bed.serve(12);
  bed.server->set_on_channel([](MicServerChannel& channel) {
    auto* ch = &channel;
    channel.set_on_data([ch](const transport::ChunkView& view) {
      // Echo upper-cased.
      std::vector<std::uint8_t> reply(view.bytes.begin(), view.bytes.end());
      for (auto& b : reply) b = static_cast<std::uint8_t>(std::toupper(b));
      ch->send(transport::Chunk::real(std::move(reply)));
    });
  });

  MicSocketApi api(bed.fabric.host(0), bed.fabric.mc(), bed.fabric.rng());
  const int fd = api.mic_connect(bed.fabric.ip(12), 7000);
  EXPECT_FALSE(api.ready(fd));

  const std::string msg = "anonymize me";
  api.mic_send(fd, {reinterpret_cast<const std::uint8_t*>(msg.data()),
                    msg.size()});
  bed.fabric.simulator().run_until();
  EXPECT_TRUE(api.ready(fd));
  ASSERT_EQ(api.readable(fd), msg.size());

  std::vector<std::uint8_t> buffer(64);
  const std::size_t n = api.mic_recv(fd, buffer);
  EXPECT_EQ(std::string(buffer.begin(), buffer.begin() + static_cast<long>(n)),
            "ANONYMIZE ME");
  EXPECT_EQ(api.readable(fd), 0u);

  api.mic_close(fd);
  bed.fabric.simulator().run_until();
  EXPECT_EQ(bed.fabric.mc().active_channel_count(), 0u);
}

TEST(SocketApi, HiddenServiceByNickname) {
  MicBed bed;
  bed.serve(9);
  bed.fabric.mc().register_hidden_service("kv-store", bed.fabric.ip(9), 7000);
  std::uint64_t served = 0;
  bed.server->set_on_channel([&](MicServerChannel& channel) {
    channel.set_on_data(
        [&](const transport::ChunkView& view) { served += view.length; });
  });

  MicSocketApi api(bed.fabric.host(3), bed.fabric.mc(), bed.fabric.rng());
  const int fd = api.mic_connect("kv-store");
  const std::vector<std::uint8_t> put{'P', 'U', 'T'};
  api.mic_send(fd, put);
  bed.fabric.simulator().run_until();
  EXPECT_TRUE(api.ready(fd));
  EXPECT_EQ(served, 3u);

  // Unknown nicknames fail cleanly.
  const int bad = api.mic_connect("no-such-service");
  bed.fabric.simulator().run_until();
  EXPECT_TRUE(api.failed(bad));
}

TEST(SocketApi, PartialRecvKeepsRemainder) {
  MicBed bed;
  bed.serve(12);
  bed.server->set_on_channel([](MicServerChannel& channel) {
    auto* ch = &channel;
    channel.set_on_data([ch](const transport::ChunkView&) {
      ch->send(transport::Chunk::real(
          std::vector<std::uint8_t>{'0', '1', '2', '3', '4', '5', '6', '7'}));
    });
  });
  MicSocketApi api(bed.fabric.host(0), bed.fabric.mc(), bed.fabric.rng());
  const int fd = api.mic_connect(bed.fabric.ip(12), 7000);
  api.mic_send(fd, std::vector<std::uint8_t>{'x'});
  bed.fabric.simulator().run_until();
  ASSERT_EQ(api.readable(fd), 8u);
  std::vector<std::uint8_t> buffer(3);
  EXPECT_EQ(api.mic_recv(fd, buffer), 3u);
  EXPECT_EQ(buffer, (std::vector<std::uint8_t>{'0', '1', '2'}));
  EXPECT_EQ(api.readable(fd), 5u);
}

TEST(MicWire, SliceHeaderRoundTrip) {
  SliceHeader header;
  header.channel = 0xdeadbeef;
  header.seq = 12345;
  header.length = 4096;
  header.flow = 3;
  const auto bytes = serialize_slice_header(header);
  EXPECT_EQ(bytes.size(), kSliceHeaderBytes);
  const SliceHeader parsed = parse_slice_header(bytes);
  EXPECT_EQ(parsed.channel, header.channel);
  EXPECT_EQ(parsed.seq, header.seq);
  EXPECT_EQ(parsed.length, header.length);
  EXPECT_EQ(parsed.flow, header.flow);
}

TEST(MicWire, LongServiceNamesSurviveSerialization) {
  EstablishRequest request;
  request.initiator_ip = net::Ipv4(10, 0, 0, 2);
  request.service_name = std::string(200, 'x');  // near the u8 length cap
  request.flow_count = 1;
  request.initiator_sports = {40001};
  const auto bytes = serialize_request(request);
  const EstablishRequest parsed = deserialize_request(bytes);
  EXPECT_EQ(parsed.service_name, request.service_name);
}

TEST(MicWire, ReordererIgnoresDuplicates) {
  SliceReorderer reorderer;
  int delivered = 0;
  auto deliver = [&](transport::Chunk) { ++delivered; };
  reorderer.push(0, transport::Chunk::virtual_bytes(10), deliver);
  EXPECT_EQ(delivered, 1);
  reorderer.push(0, transport::Chunk::virtual_bytes(10), deliver);  // dup
  EXPECT_EQ(delivered, 1);
  reorderer.push(2, transport::Chunk::virtual_bytes(10), deliver);  // hole
  EXPECT_EQ(delivered, 1);
  reorderer.push(1, transport::Chunk::virtual_bytes(10), deliver);
  EXPECT_EQ(delivered, 3);
  EXPECT_EQ(reorderer.buffered(), 0u);
}

TEST(MicWire, ZeroLengthSlicesAdvanceWithoutDelivery) {
  SliceReorderer reorderer;
  int delivered = 0;
  reorderer.push(0, transport::Chunk::virtual_bytes(0),
                 [&](transport::Chunk) { ++delivered; });
  reorderer.push(1, transport::Chunk::virtual_bytes(5),
                 [&](transport::Chunk) { ++delivered; });
  EXPECT_EQ(delivered, 1);  // the hello slice was skipped, the data wasn't
}

TEST(MicEstablish, EntryAddressesUniqueAcrossManyChannels) {
  MicBed bed;
  std::set<std::pair<std::uint32_t, net::L4Port>> entries;
  for (int i = 0; i < 40; ++i) {
    EstablishRequest request;
    request.initiator_ip = bed.fabric.ip(0);
    request.responder_ip = bed.fabric.ip(12);
    request.responder_port = 7000;
    request.initiator_sports = {static_cast<net::L4Port>(42000 + i)};
    const auto result = bed.fabric.mc().establish(request);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_TRUE(entries
                    .insert({result.entries[0].ip.value,
                             result.entries[0].port})
                    .second)
        << "duplicate entry address at channel " << i;
  }
}

TEST(MicEstablish, HiddenServiceReRegistrationMoves) {
  MicBed bed;
  bed.fabric.mc().register_hidden_service("svc", bed.fabric.ip(9), 7000);
  bed.fabric.mc().register_hidden_service("svc", bed.fabric.ip(10), 7500);

  EstablishRequest request;
  request.initiator_ip = bed.fabric.ip(0);
  request.service_name = "svc";
  request.initiator_sports = {40001};
  const auto result = bed.fabric.mc().establish(request);
  ASSERT_TRUE(result.ok);
  const auto* state = bed.fabric.mc().channel(result.channel);
  EXPECT_EQ(state->flows[0].forward.back().dst, bed.fabric.ip(10));
  EXPECT_EQ(state->flows[0].forward.back().dport, 7500);
}

TEST(MicWire, ControlMessageRoundTrip) {
  EstablishRequest request;
  request.initiator_ip = net::Ipv4(10, 1, 0, 2);
  request.responder_ip = net::Ipv4(10, 3, 1, 3);
  request.responder_port = 7000;
  request.flow_count = 3;
  request.mn_count = 4;
  request.multicast_decoys = 2;
  request.service_name = "svc";
  request.initiator_sports = {40001, 40002, 40003};

  auto bytes = serialize_request(request);
  crypto::Aes128::Key key{};
  key[0] = 0x42;
  const auto plaintext = bytes;
  crypt_control_message(key, 7, bytes);
  EXPECT_NE(bytes, plaintext);
  crypt_control_message(key, 7, bytes);
  EXPECT_EQ(bytes, plaintext);

  const EstablishRequest parsed = deserialize_request(bytes);
  EXPECT_EQ(parsed.initiator_ip, request.initiator_ip);
  EXPECT_EQ(parsed.responder_ip, request.responder_ip);
  EXPECT_EQ(parsed.flow_count, 3);
  EXPECT_EQ(parsed.mn_count, 4);
  EXPECT_EQ(parsed.multicast_decoys, 2);
  EXPECT_EQ(parsed.service_name, "svc");
  EXPECT_EQ(parsed.initiator_sports, request.initiator_sports);
}

}  // namespace
}  // namespace mic::core
