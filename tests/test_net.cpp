// Tests for the fabric layer: link timing, queue drops, taps.
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "net/trace.hpp"

namespace mic::net {
namespace {

/// Captures delivered packets.
class SinkDevice : public Device {
 public:
  void receive(const Packet& packet, topo::PortId in_port) override {
    received.push_back({packet, in_port, network_->simulator().now()});
  }
  struct Delivery {
    Packet packet;
    topo::PortId in_port;
    sim::SimTime at;
  };
  std::vector<Delivery> received;
};

struct TwoNodeFixture {
  TwoNodeFixture(LinkConfig config = {}) : network(simulator, graph_init(), config) {
    auto a_dev = std::make_unique<SinkDevice>();
    auto b_dev = std::make_unique<SinkDevice>();
    a_sink = a_dev.get();
    b_sink = b_dev.get();
    network.set_device(a, std::move(a_dev));
    network.set_device(b, std::move(b_dev));
  }

  const topo::Graph& graph_init() {
    a = graph.add_node(topo::NodeKind::kHost);
    b = graph.add_node(topo::NodeKind::kHost);
    graph.add_link(a, b);
    return graph;
  }

  Packet make_packet(std::uint32_t payload) {
    Packet p;
    p.src = Ipv4(10, 0, 0, 1);
    p.dst = Ipv4(10, 0, 0, 2);
    p.tcp.payload_len = payload;
    p.packet_id = network.next_packet_id();
    return p;
  }

  sim::Simulator simulator;
  topo::Graph graph;
  topo::NodeId a{}, b{};
  net::Network network;
  SinkDevice* a_sink{};
  SinkDevice* b_sink{};
};

TEST(Network, DeliveryTimingSerializationPlusPropagation) {
  LinkConfig config;
  config.bandwidth_bps = 1'000'000'000;
  config.propagation_delay = sim::microseconds(5);
  TwoNodeFixture fix(config);

  Packet p = fix.make_packet(1446);  // wire = 54 + 1446 = 1500 bytes
  ASSERT_TRUE(fix.network.transmit(fix.a, 0, p));
  fix.simulator.run_until();
  ASSERT_EQ(fix.b_sink->received.size(), 1u);
  // 1500 B at 1 Gb/s = 12 us serialization + 5 us propagation.
  EXPECT_EQ(fix.b_sink->received[0].at, sim::microseconds(17));
}

TEST(Network, BackToBackPacketsQueueBehind) {
  TwoNodeFixture fix;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(fix.network.transmit(fix.a, 0, fix.make_packet(1446)));
  }
  fix.simulator.run_until();
  ASSERT_EQ(fix.b_sink->received.size(), 3u);
  EXPECT_EQ(fix.b_sink->received[0].at, sim::microseconds(17));
  EXPECT_EQ(fix.b_sink->received[1].at, sim::microseconds(29));
  EXPECT_EQ(fix.b_sink->received[2].at, sim::microseconds(41));
}

TEST(Network, DropTailWhenQueueFull) {
  LinkConfig config;
  config.queue_capacity_bytes = 3000;  // fits exactly two 1500 B packets
  TwoNodeFixture fix(config);
  EXPECT_TRUE(fix.network.transmit(fix.a, 0, fix.make_packet(1446)));
  EXPECT_TRUE(fix.network.transmit(fix.a, 0, fix.make_packet(1446)));
  EXPECT_FALSE(fix.network.transmit(fix.a, 0, fix.make_packet(1446)));
  EXPECT_EQ(fix.network.total_drops(), 1u);
  fix.simulator.run_until();
  EXPECT_EQ(fix.b_sink->received.size(), 2u);
}

TEST(Network, QueueDrainsAndAcceptsAgain) {
  LinkConfig config;
  config.queue_capacity_bytes = 1600;
  TwoNodeFixture fix(config);
  EXPECT_TRUE(fix.network.transmit(fix.a, 0, fix.make_packet(1446)));
  EXPECT_FALSE(fix.network.transmit(fix.a, 0, fix.make_packet(1446)));
  fix.simulator.run_until();
  EXPECT_TRUE(fix.network.transmit(fix.a, 0, fix.make_packet(1446)));
  fix.simulator.run_until();
  EXPECT_EQ(fix.b_sink->received.size(), 2u);
}

TEST(Network, DirectionsAreIndependent) {
  TwoNodeFixture fix;
  ASSERT_TRUE(fix.network.transmit(fix.a, 0, fix.make_packet(100)));
  ASSERT_TRUE(fix.network.transmit(fix.b, 0, fix.make_packet(100)));
  fix.simulator.run_until();
  EXPECT_EQ(fix.a_sink->received.size(), 1u);
  EXPECT_EQ(fix.b_sink->received.size(), 1u);
}

TEST(Network, TapsObserveWireHeaders) {
  TwoNodeFixture fix;
  std::vector<Packet> seen;
  fix.network.add_link_tap(0, [&](topo::LinkId, topo::NodeId from,
                                  topo::NodeId, const Packet& packet,
                                  sim::SimTime) {
    EXPECT_EQ(from, fix.a);
    seen.push_back(packet);
  });
  Packet p = fix.make_packet(10);
  p.mpls = 0x1234;
  ASSERT_TRUE(fix.network.transmit(fix.a, 0, p));
  fix.simulator.run_until();
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].mpls, 0x1234u);
  EXPECT_EQ(seen[0].src, Ipv4(10, 0, 0, 1));
}

TEST(Network, LinkStatsCount) {
  TwoNodeFixture fix;
  ASSERT_TRUE(fix.network.transmit(fix.a, 0, fix.make_packet(1446)));
  ASSERT_TRUE(fix.network.transmit(fix.a, 0, fix.make_packet(1446)));
  fix.simulator.run_until();
  const auto& stats = fix.network.stats(0, 0);
  EXPECT_EQ(stats.packets, 2u);
  EXPECT_EQ(stats.bytes, 3000u);
}

TEST(Network, MplsAddsWireBytes) {
  Packet p;
  p.tcp.payload_len = 100;
  EXPECT_EQ(p.wire_bytes(), 154u);
  p.mpls = 42;
  EXPECT_EQ(p.wire_bytes(), 158u);
}

TEST(Trace, WriteAndLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "mic_trace_test.tsv";
  {
    TwoNodeFixture fix;
    net::TraceWriter writer(fix.network, path);
    Packet p = fix.make_packet(100);
    p.mpls = 0xabc;
    p.content_tag = 0x1234;
    ASSERT_TRUE(fix.network.transmit(fix.a, 0, p));
    ASSERT_TRUE(fix.network.transmit(fix.b, 0, fix.make_packet(50)));
    fix.simulator.run_until();
    EXPECT_EQ(writer.entries_written(), 2u);
  }
  const auto entries = net::load_trace(path);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].src, Ipv4(10, 0, 0, 1));
  EXPECT_EQ(entries[0].mpls, 0xabcu);
  EXPECT_EQ(entries[0].content_tag, 0x1234u);
  EXPECT_EQ(entries[0].payload_bytes, 100u);
  EXPECT_EQ(entries[1].payload_bytes, 50u);
  std::remove(path.c_str());
}

TEST(Trace, DeterministicAcrossSeededRuns) {
  auto run = [](const std::string& path) {
    TwoNodeFixture fix;
    net::TraceWriter writer(fix.network, path);
    for (int i = 0; i < 5; ++i) {
      fix.network.transmit(fix.a, 0, fix.make_packet(100 + i));
    }
    fix.simulator.run_until();
  };
  const std::string path1 = ::testing::TempDir() + "mic_trace_a.tsv";
  const std::string path2 = ::testing::TempDir() + "mic_trace_b.tsv";
  run(path1);
  run(path2);
  const auto a = net::load_trace(path1);
  const auto b = net::load_trace(path2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].src, b[i].src);
    EXPECT_EQ(a[i].wire_bytes, b[i].wire_bytes);
  }
  std::remove(path1.c_str());
  std::remove(path2.c_str());
}

TEST(Addr, Ipv4Formatting) {
  const Ipv4 ip(10, 1, 2, 3);
  EXPECT_EQ(ip.str(), "10.1.2.3");
  EXPECT_EQ(ip.octet(0), 10);
  EXPECT_EQ(ip.octet(3), 3);
  EXPECT_EQ(ip, Ipv4{0x0a010203});
}

}  // namespace
}  // namespace mic::net
