// Tests for the fabric layer: link timing, queue drops, taps.
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "net/trace.hpp"

namespace mic::net {
namespace {

/// Captures delivered packets.
class SinkDevice : public Device {
 public:
  void receive(const Packet& packet, topo::PortId in_port) override {
    received.push_back({packet, in_port, network_->simulator().now()});
  }
  struct Delivery {
    Packet packet;
    topo::PortId in_port;
    sim::SimTime at;
  };
  std::vector<Delivery> received;
};

struct TwoNodeFixture {
  TwoNodeFixture(LinkConfig config = {}) : network(simulator, graph_init(), config) {
    auto a_dev = std::make_unique<SinkDevice>();
    auto b_dev = std::make_unique<SinkDevice>();
    a_sink = a_dev.get();
    b_sink = b_dev.get();
    network.set_device(a, std::move(a_dev));
    network.set_device(b, std::move(b_dev));
  }

  const topo::Graph& graph_init() {
    a = graph.add_node(topo::NodeKind::kHost);
    b = graph.add_node(topo::NodeKind::kHost);
    graph.add_link(a, b);
    return graph;
  }

  Packet make_packet(std::uint32_t payload) {
    Packet p;
    p.src = Ipv4(10, 0, 0, 1);
    p.dst = Ipv4(10, 0, 0, 2);
    p.tcp.payload_len = payload;
    p.packet_id = network.next_packet_id();
    return p;
  }

  sim::Simulator simulator;
  topo::Graph graph;
  topo::NodeId a{}, b{};
  net::Network network;
  SinkDevice* a_sink{};
  SinkDevice* b_sink{};
};

TEST(Network, DeliveryTimingSerializationPlusPropagation) {
  LinkConfig config;
  config.bandwidth_bps = 1'000'000'000;
  config.propagation_delay = sim::microseconds(5);
  TwoNodeFixture fix(config);

  Packet p = fix.make_packet(1446);  // wire = 54 + 1446 = 1500 bytes
  ASSERT_TRUE(fix.network.transmit(fix.a, 0, p));
  fix.simulator.run_until();
  ASSERT_EQ(fix.b_sink->received.size(), 1u);
  // 1500 B at 1 Gb/s = 12 us serialization + 5 us propagation.
  EXPECT_EQ(fix.b_sink->received[0].at, sim::microseconds(17));
}

TEST(Network, BackToBackPacketsQueueBehind) {
  TwoNodeFixture fix;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(fix.network.transmit(fix.a, 0, fix.make_packet(1446)));
  }
  fix.simulator.run_until();
  ASSERT_EQ(fix.b_sink->received.size(), 3u);
  EXPECT_EQ(fix.b_sink->received[0].at, sim::microseconds(17));
  EXPECT_EQ(fix.b_sink->received[1].at, sim::microseconds(29));
  EXPECT_EQ(fix.b_sink->received[2].at, sim::microseconds(41));
}

TEST(Network, DropTailWhenQueueFull) {
  LinkConfig config;
  config.queue_capacity_bytes = 3000;  // fits exactly two 1500 B packets
  TwoNodeFixture fix(config);
  EXPECT_TRUE(fix.network.transmit(fix.a, 0, fix.make_packet(1446)));
  EXPECT_TRUE(fix.network.transmit(fix.a, 0, fix.make_packet(1446)));
  EXPECT_FALSE(fix.network.transmit(fix.a, 0, fix.make_packet(1446)));
  EXPECT_EQ(fix.network.total_drops(), 1u);
  fix.simulator.run_until();
  EXPECT_EQ(fix.b_sink->received.size(), 2u);
}

TEST(Network, QueueDrainsAndAcceptsAgain) {
  LinkConfig config;
  config.queue_capacity_bytes = 1600;
  TwoNodeFixture fix(config);
  EXPECT_TRUE(fix.network.transmit(fix.a, 0, fix.make_packet(1446)));
  EXPECT_FALSE(fix.network.transmit(fix.a, 0, fix.make_packet(1446)));
  fix.simulator.run_until();
  EXPECT_TRUE(fix.network.transmit(fix.a, 0, fix.make_packet(1446)));
  fix.simulator.run_until();
  EXPECT_EQ(fix.b_sink->received.size(), 2u);
}

TEST(Network, DirectionsAreIndependent) {
  TwoNodeFixture fix;
  ASSERT_TRUE(fix.network.transmit(fix.a, 0, fix.make_packet(100)));
  ASSERT_TRUE(fix.network.transmit(fix.b, 0, fix.make_packet(100)));
  fix.simulator.run_until();
  EXPECT_EQ(fix.a_sink->received.size(), 1u);
  EXPECT_EQ(fix.b_sink->received.size(), 1u);
}

TEST(Network, TapsObserveWireHeaders) {
  TwoNodeFixture fix;
  std::vector<Packet> seen;
  fix.network.add_link_tap(0, [&](topo::LinkId, topo::NodeId from,
                                  topo::NodeId, const Packet& packet,
                                  sim::SimTime) {
    EXPECT_EQ(from, fix.a);
    seen.push_back(packet);
  });
  Packet p = fix.make_packet(10);
  p.mpls = 0x1234;
  ASSERT_TRUE(fix.network.transmit(fix.a, 0, p));
  fix.simulator.run_until();
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].mpls, 0x1234u);
  EXPECT_EQ(seen[0].src, Ipv4(10, 0, 0, 1));
}

TEST(Network, LinkStatsCount) {
  TwoNodeFixture fix;
  ASSERT_TRUE(fix.network.transmit(fix.a, 0, fix.make_packet(1446)));
  ASSERT_TRUE(fix.network.transmit(fix.a, 0, fix.make_packet(1446)));
  fix.simulator.run_until();
  const auto& stats = fix.network.stats(0, 0);
  EXPECT_EQ(stats.packets, 2u);
  EXPECT_EQ(stats.bytes, 3000u);
}

TEST(Network, MplsAddsWireBytes) {
  Packet p;
  p.tcp.payload_len = 100;
  EXPECT_EQ(p.wire_bytes(), 154u);
  p.mpls = 42;
  EXPECT_EQ(p.wire_bytes(), 158u);
}

TEST(Trace, WriteAndLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "mic_trace_test.tsv";
  {
    TwoNodeFixture fix;
    net::TraceWriter writer(fix.network, path);
    Packet p = fix.make_packet(100);
    p.mpls = 0xabc;
    p.content_tag = 0x1234;
    ASSERT_TRUE(fix.network.transmit(fix.a, 0, p));
    ASSERT_TRUE(fix.network.transmit(fix.b, 0, fix.make_packet(50)));
    fix.simulator.run_until();
    EXPECT_EQ(writer.entries_written(), 2u);
  }
  const auto entries = net::load_trace(path);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].src, Ipv4(10, 0, 0, 1));
  EXPECT_EQ(entries[0].mpls, 0xabcu);
  EXPECT_EQ(entries[0].content_tag, 0x1234u);
  EXPECT_EQ(entries[0].payload_bytes, 100u);
  EXPECT_EQ(entries[1].payload_bytes, 50u);
  std::remove(path.c_str());
}

TEST(Trace, DeterministicAcrossSeededRuns) {
  auto run = [](const std::string& path) {
    TwoNodeFixture fix;
    net::TraceWriter writer(fix.network, path);
    for (int i = 0; i < 5; ++i) {
      fix.network.transmit(fix.a, 0, fix.make_packet(100 + i));
    }
    fix.simulator.run_until();
  };
  const std::string path1 = ::testing::TempDir() + "mic_trace_a.tsv";
  const std::string path2 = ::testing::TempDir() + "mic_trace_b.tsv";
  run(path1);
  run(path2);
  const auto a = net::load_trace(path1);
  const auto b = net::load_trace(path2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].src, b[i].src);
    EXPECT_EQ(a[i].wire_bytes, b[i].wire_bytes);
  }
  std::remove(path1.c_str());
  std::remove(path2.c_str());
}

TEST(Trace, HashRoundTripMatchesLiveTap) {
  // The written trace carries everything TraceHash folds: re-hashing the
  // parsed entries must reproduce the live fingerprint bit-exactly.
  const std::string path = ::testing::TempDir() + "mic_trace_hash.tsv";
  std::uint64_t live_hash = 0;
  std::uint64_t live_packets = 0;
  {
    TwoNodeFixture fix;
    net::TraceWriter writer(fix.network, path);
    net::TraceHash hash(fix.network);
    for (int i = 0; i < 8; ++i) {
      Packet p = fix.make_packet(64 + static_cast<std::uint32_t>(i));
      p.mpls = static_cast<MplsLabel>(0x100 + i);
      p.content_tag = 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(i + 1);
      p.tcp.seq = static_cast<std::uint64_t>(i) * 1000;
      p.tcp.flags.syn = (i == 0);
      p.tcp.flags.ack = (i > 0);
      ASSERT_TRUE(fix.network.transmit(i % 2 == 0 ? fix.a : fix.b, 0, p));
      fix.simulator.run_until();
    }
    live_hash = hash.value();
    live_packets = hash.packets();
    EXPECT_EQ(writer.entries_written(), live_packets);
  }
  const auto entries = net::load_trace(path);
  ASSERT_EQ(entries.size(), live_packets);
  EXPECT_EQ(net::trace_hash_of(entries), live_hash);
  std::remove(path.c_str());
}

namespace {
std::string write_temp_trace(const std::string& name,
                             const std::string& content) {
  const std::string path = ::testing::TempDir() + name;
  std::FILE* f = std::fopen(path.c_str(), "w");
  EXPECT_NE(f, nullptr);
  std::fputs(content.c_str(), f);
  std::fclose(f);
  return path;
}

constexpr const char* kTraceHeader =
    "time_ns\tlink\tfrom\tto\tsrc\tdst\tsport\tdport\tmpls\tseq\tack\t"
    "flags\tbytes\tpayload\ttag\n";

constexpr const char* kGoodRecord =
    "100\t0\t0\t1\t10.0.0.1\t10.0.0.2\t40000\t7000\t4294967295\t5\t6\t12\t"
    "154\t100\tdeadbeef\n";
}  // namespace

TEST(Trace, CheckedParserAcceptsWellFormedFile) {
  const std::string path = write_temp_trace(
      "mic_trace_ok.tsv", std::string(kTraceHeader) + kGoodRecord);
  const net::TraceParseResult result = net::load_trace_checked(path);
  EXPECT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.entries.size(), 1u);
  EXPECT_EQ(result.entries[0].time, 100u);
  EXPECT_EQ(result.entries[0].sport, 40000u);
  EXPECT_EQ(result.entries[0].tcp_flag_bits, 12u);
  EXPECT_EQ(result.entries[0].content_tag, 0xdeadbeefu);
  std::remove(path.c_str());
}

TEST(Trace, CheckedParserRejectsBadHeader) {
  const std::string path = write_temp_trace(
      "mic_trace_badhdr.tsv", std::string("time\tlink\n") + kGoodRecord);
  const net::TraceParseResult result = net::load_trace_checked(path);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error_line, 1u);
  EXPECT_NE(result.error.find("header"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Trace, CheckedParserRejectsTruncatedRecord) {
  // A record cut mid-way (e.g. a crashed writer) has too few fields; the
  // parser must name the line instead of silently skipping it.
  const std::string path = write_temp_trace(
      "mic_trace_trunc.tsv",
      std::string(kTraceHeader) + kGoodRecord + "200\t0\t0\t1\t10.0.0.1");
  const net::TraceParseResult result = net::load_trace_checked(path);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error_line, 3u);
  EXPECT_NE(result.error.find("15 fields"), std::string::npos);
  // Everything before the bad line survives for forensics.
  EXPECT_EQ(result.entries.size(), 1u);
  std::remove(path.c_str());
}

TEST(Trace, CheckedParserRejectsTrailingGarbage) {
  std::string record(kGoodRecord);
  record.insert(record.size() - 1, "\textra");
  const std::string path = write_temp_trace(
      "mic_trace_garbage.tsv", std::string(kTraceHeader) + record);
  const net::TraceParseResult result = net::load_trace_checked(path);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error_line, 2u);
  EXPECT_NE(result.error.find("trailing"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Trace, CheckedParserRejectsMalformedAddress) {
  std::string record(kGoodRecord);
  const std::size_t at = record.find("10.0.0.2");
  record.replace(at, 8, "10.0.999.2");
  const std::string path = write_temp_trace(
      "mic_trace_badip.tsv", std::string(kTraceHeader) + record);
  const net::TraceParseResult result = net::load_trace_checked(path);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error_line, 2u);
  EXPECT_NE(result.error.find("destination address"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Trace, CheckedParserRejectsOutOfRangeFields) {
  {
    std::string record(kGoodRecord);
    record.replace(record.find("40000"), 5, "70000");  // sport > 0xffff
    const std::string path = write_temp_trace(
        "mic_trace_badport.tsv", std::string(kTraceHeader) + record);
    const net::TraceParseResult result = net::load_trace_checked(path);
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.error_line, 2u);
    EXPECT_NE(result.error.find("port"), std::string::npos);
    std::remove(path.c_str());
  }
  {
    std::string record(kGoodRecord);
    record.replace(record.find("\t12\t"), 4, "\t16\t");  // flags > 0xf
    const std::string path = write_temp_trace(
        "mic_trace_badflags.tsv", std::string(kTraceHeader) + record);
    const net::TraceParseResult result = net::load_trace_checked(path);
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.error_line, 2u);
    EXPECT_NE(result.error.find("flag"), std::string::npos);
    std::remove(path.c_str());
  }
}

TEST(Trace, CheckedParserRejectsBlankLineAndEmptyFile) {
  {
    const std::string path = write_temp_trace(
        "mic_trace_blank.tsv",
        std::string(kTraceHeader) + "\n" + kGoodRecord);
    const net::TraceParseResult result = net::load_trace_checked(path);
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.error_line, 2u);
    std::remove(path.c_str());
  }
  {
    const std::string path = write_temp_trace("mic_trace_empty.tsv", "");
    const net::TraceParseResult result = net::load_trace_checked(path);
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.error_line, 0u);
    std::remove(path.c_str());
  }
  {
    const net::TraceParseResult result =
        net::load_trace_checked("/nonexistent/mic_trace_nope.tsv");
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.error_line, 0u);
    EXPECT_NE(result.error.find("open"), std::string::npos);
  }
}

TEST(Addr, Ipv4Formatting) {
  const Ipv4 ip(10, 1, 2, 3);
  EXPECT_EQ(ip.str(), "10.1.2.3");
  EXPECT_EQ(ip.octet(0), 10);
  EXPECT_EQ(ip.octet(3), 3);
  EXPECT_EQ(ip, Ipv4{0x0a010203});
}

}  // namespace
}  // namespace mic::net
