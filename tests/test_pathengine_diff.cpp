// Differential tests: the lazy PathEngine against the retained
// AllPairsPaths oracle (the FlowTable reference_lookup() precedent).
//
// For any topology and failed-link set, the engine must agree with a
// freshly-built oracle on every distance, produce only valid shortest
// paths when sampling, and enumerate exactly the oracle's equal-cost path
// set.  Failure epochs are exercised both wholesale (set_failed_links) and
// incrementally (link_failed / link_restored on warm caches, where row
// retention does the interesting work).  PE-1: warm-up and its thread
// count must not change anything observable.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "topology/bcube.hpp"
#include "topology/fattree.hpp"
#include "topology/leafspine.hpp"
#include "topology/path_engine.hpp"
#include "topology/paths.hpp"

namespace mic::topo {
namespace {

struct Topo {
  const char* name;
  Graph graph;
  std::vector<NodeId> endpoints;  // hosts/servers: the interesting pairs
};

std::vector<Topo> make_topologies() {
  std::vector<Topo> out;
  {
    const FatTree ft(4);
    out.push_back({"fattree4", ft.graph(), ft.hosts()});
  }
  {
    const FatTree ft(6);
    out.push_back({"fattree6", ft.graph(), ft.hosts()});
  }
  {
    const LeafSpine ls(3, 4, 4);
    out.push_back({"leafspine", ls.graph(), ls.hosts()});
  }
  {
    const BCube bc(4, 1);
    out.push_back({"bcube", bc.graph(), bc.servers()});
  }
  return out;
}

std::unordered_set<LinkId> random_failures(const Graph& graph, Rng& rng,
                                           std::size_t count) {
  std::unordered_set<LinkId> failed;
  while (failed.size() < count) {
    failed.insert(static_cast<LinkId>(rng.below(graph.link_count())));
  }
  return failed;
}

/// A sampled path must be a valid shortest path under the failure set:
/// correct endpoints, length == distance + 1, consecutive nodes adjacent
/// over live links, interior all switches.
void check_sampled_path(const Graph& graph, const AllPairsPaths& oracle,
                        const std::unordered_set<LinkId>& failed,
                        const Path& path, NodeId src, NodeId dst) {
  ASSERT_GE(path.size(), 2u);
  EXPECT_EQ(path.front(), src);
  EXPECT_EQ(path.back(), dst);
  ASSERT_EQ(path.size(), oracle.distance(src, dst) + 1);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const LinkId link = graph.link_between(path[i], path[i + 1]);
    ASSERT_NE(link, kInvalidLink);
    EXPECT_FALSE(failed.contains(link));
    if (i > 0) {
      EXPECT_TRUE(graph.is_switch(path[i]));
    }
  }
}

TEST(PathEngineDiff, RandomizedAgainstOracle) {
  // >= 5k randomized (topology, failure set, node pair) distance cases,
  // with path sampling and enumeration cross-checked on the reachable
  // ones.
  const auto topologies = make_topologies();
  Rng rng(20260806);
  std::size_t distance_cases = 0;

  for (const auto& topo : topologies) {
    const Graph& graph = topo.graph;
    for (int scenario = 0; scenario < 12; ++scenario) {
      // Scenario 0 is the pristine graph; later ones fail 1..6 links.
      const std::unordered_set<LinkId> failed =
          scenario == 0
              ? std::unordered_set<LinkId>{}
              : random_failures(graph, rng, 1 + rng.below(6));
      const AllPairsPaths oracle(graph,
                                 failed.empty() ? nullptr : &failed);
      PathEngine engine(graph);
      engine.set_failed_links(failed);

      for (int trial = 0; trial < 120; ++trial) {
        // Mostly endpoint pairs (the product's query mix), sometimes any
        // node pair including switches (sample_long_path waypoints).
        NodeId a, b;
        if (rng.chance(0.8)) {
          a = topo.endpoints[rng.below(topo.endpoints.size())];
          b = topo.endpoints[rng.below(topo.endpoints.size())];
        } else {
          a = static_cast<NodeId>(rng.below(graph.size()));
          b = static_cast<NodeId>(rng.below(graph.size()));
        }
        ASSERT_EQ(engine.distance(a, b), oracle.distance(a, b))
            << topo.name << " scenario " << scenario << " pair " << a
            << "->" << b;
        ++distance_cases;
        if (a == b || !oracle.reachable(a, b)) continue;

        if (trial % 10 == 0) {
          const Path p = engine.sample_shortest_path(a, b, rng);
          check_sampled_path(graph, oracle, failed, p, a, b);
        }
        if (trial % 30 == 0) {
          // The engine's equal-cost set must be exactly the oracle's.
          constexpr std::size_t kLimit = 64;
          auto ours = engine.enumerate_shortest_paths(a, b, kLimit);
          auto theirs = oracle.enumerate_shortest_paths(a, b, kLimit);
          if (theirs.size() < kLimit) {
            std::sort(ours.begin(), ours.end());
            std::sort(theirs.begin(), theirs.end());
            EXPECT_EQ(ours, theirs) << topo.name << " " << a << "->" << b;
          } else {
            EXPECT_EQ(ours.size(), kLimit);
            const std::set<Path> unique(ours.begin(), ours.end());
            EXPECT_EQ(unique.size(), ours.size());
          }
        }
      }
    }
  }
  EXPECT_GE(distance_cases, 5000u);
}

TEST(PathEngineDiff, IncrementalFailureEpochsMatchFreshOracle) {
  // The interesting path: fail and restore links one at a time against a
  // *warm* cache, so retained rows (the sub-linear invalidation) are what
  // answers most queries -- and every answer must still match an oracle
  // built from scratch for the current failure set.
  const FatTree ft(4);
  const Graph& graph = ft.graph();
  PathEngine engine(graph);
  engine.warm_up(ft.hosts(), 2);  // warm every host row up front

  Rng rng(99);
  std::unordered_set<LinkId> failed;
  for (int step = 0; step < 30; ++step) {
    if (!failed.empty() && rng.chance(0.4)) {
      // Restore a random currently-failed link.
      auto it = failed.begin();
      std::advance(it, static_cast<long>(rng.below(failed.size())));
      const LinkId link = *it;
      failed.erase(it);
      engine.link_restored(link);
    } else {
      const LinkId link = static_cast<LinkId>(rng.below(graph.link_count()));
      if (!failed.insert(link).second) continue;
      engine.link_failed(link);
    }

    const AllPairsPaths oracle(graph, failed.empty() ? nullptr : &failed);
    for (const NodeId h : ft.hosts()) {
      for (const NodeId sw : graph.switches()) {
        ASSERT_EQ(engine.distance(sw, h), oracle.distance(sw, h))
            << "step " << step << " sw " << sw << " host " << h;
      }
    }
  }
  // The epoch machinery must actually have retained rows (otherwise this
  // test degenerates into recompute-everything and proves nothing).
  EXPECT_GT(engine.stats().rows_retained, 0u);
  EXPECT_GT(engine.stats().rows_invalidated, 0u);
}

TEST(PathEngineDiff, ClusteredFailuresRetainUnaffectedRows) {
  // Sub-linear invalidation: once an edge switch is partitioned off, a
  // further failure inside the dead region touches only the rows of the
  // hosts under that switch -- every other row's BFS tree cannot cross the
  // link, so it is retained byte-for-byte (and must still be correct).
  const FatTree ft(8);
  const Graph& graph = ft.graph();
  PathEngine engine(graph);

  // Kill every uplink of the first edge switch.
  const NodeId edge = ft.edge_switches()[0];
  std::unordered_set<LinkId> failed;
  for (const auto& adj : graph.neighbors(edge)) {
    if (graph.is_switch(adj.peer)) failed.insert(adj.link);
  }
  engine.set_failed_links(failed);
  engine.warm_up(ft.hosts(), 1);  // warm all host rows post-partition

  // Now fail a host link inside the partition.
  const NodeId local_host = ft.hosts()[0];
  ASSERT_EQ(graph.neighbors(local_host)[0].peer, edge);
  const LinkId local_link = graph.neighbors(local_host)[0].link;
  failed.insert(local_link);
  const auto before = engine.stats();
  engine.link_failed(local_link);
  const auto after = engine.stats();

  const std::uint64_t invalidated =
      after.rows_invalidated - before.rows_invalidated;
  const std::uint64_t retained = after.rows_retained - before.rows_retained;
  // Only the rows for hosts under the dead edge switch (k/2 = 4) see the
  // link; the other 124 host rows survive.
  EXPECT_EQ(invalidated, 4u);
  EXPECT_EQ(retained, ft.hosts().size() - 4);

  // Retained rows must still agree with a fresh oracle.
  const AllPairsPaths oracle(graph, &failed);
  for (const NodeId h : ft.hosts()) {
    for (const NodeId sw : graph.switches()) {
      ASSERT_EQ(engine.distance(sw, h), oracle.distance(sw, h));
    }
    ASSERT_EQ(engine.distance(local_host, h), oracle.distance(local_host, h));
  }
}

TEST(PathEngineDiff, FailedAccessLinkMatchesOracleUnreachability) {
  // Killing a host's only access link must report unreachable exactly like
  // the oracle, from both query directions.
  const FatTree ft(4);
  const NodeId victim_host = ft.hosts()[3];
  const std::unordered_set<LinkId> failed{
      ft.graph().neighbors(victim_host)[0].link};
  const AllPairsPaths oracle(ft.graph(), &failed);
  PathEngine engine(ft.graph());
  engine.set_failed_links(failed);
  for (const NodeId h : ft.hosts()) {
    EXPECT_EQ(engine.reachable(h, victim_host),
              oracle.reachable(h, victim_host));
    EXPECT_EQ(engine.reachable(victim_host, h),
              oracle.reachable(victim_host, h));
  }
  EXPECT_FALSE(engine.reachable(ft.hosts()[0], victim_host));
}

TEST(PathEngineDiff, WarmUpThreadCountIsObservationallyIrrelevant) {
  // PE-1: for a fixed seed, sampled paths (and distances) are identical
  // whether rows were computed lazily, warmed on one thread, or warmed on
  // eight -- the cache contents are a pure function of (graph, failures).
  const FatTree ft(6);
  const auto& hosts = ft.hosts();

  auto run = [&](unsigned warmup_threads) {
    PathEngine engine(ft.graph());
    if (warmup_threads > 0) engine.warm_up(hosts, warmup_threads);
    Rng rng(777);
    std::vector<Path> sampled;
    for (int i = 0; i < 200; ++i) {
      const NodeId src = hosts[rng.below(hosts.size())];
      NodeId dst = src;
      while (dst == src) dst = hosts[rng.below(hosts.size())];
      sampled.push_back(engine.sample_shortest_path(src, dst, rng));
    }
    return sampled;
  };

  const auto lazy = run(0);
  const auto warm1 = run(1);
  const auto warm8 = run(8);
  EXPECT_EQ(lazy, warm1);
  EXPECT_EQ(lazy, warm8);
}

TEST(PathEngineDiff, LongPathPropertiesHold) {
  // sample_long_path on the engine obeys the same contract as the oracle's
  // (interior switches, no repeated directed edge, >= min switches).
  const FatTree ft(4);
  PathEngine engine(ft.graph());
  Rng rng(5);
  const auto path = engine.sample_long_path(ft.hosts()[0], ft.hosts()[1], 4,
                                            rng);
  ASSERT_TRUE(path.has_value());
  EXPECT_GE(path->size(), 6u);  // >= 4 switches + 2 hosts
  for (std::size_t i = 1; i + 1 < path->size(); ++i) {
    EXPECT_TRUE(ft.graph().is_switch((*path)[i]));
  }
  std::set<std::pair<NodeId, NodeId>> edges;
  for (std::size_t i = 0; i + 1 < path->size(); ++i) {
    EXPECT_TRUE(edges.insert({(*path)[i], (*path)[i + 1]}).second);
  }
}

TEST(PathEngineDiff, StatsAccountForLazyComputation) {
  const FatTree ft(4);
  PathEngine engine(ft.graph());
  EXPECT_EQ(engine.cached_rows(), 0u);

  const NodeId dst = ft.hosts()[5];
  engine.distance(ft.hosts()[0], dst);
  EXPECT_EQ(engine.cached_rows(), 1u);
  EXPECT_EQ(engine.stats().rows_computed, 1u);

  for (const NodeId sw : ft.graph().switches()) engine.distance(sw, dst);
  EXPECT_EQ(engine.cached_rows(), 1u);  // one row serves every source
  EXPECT_EQ(engine.stats().rows_computed, 1u);
  EXPECT_EQ(engine.stats().row_hits, 20u);
}

}  // namespace
}  // namespace mic::topo
