// Parameterized property sweeps across the whole stack:
//  - the (F, N, decoys) channel matrix: every combination must deliver
//    intact data and keep the collision audit clean,
//  - TCP under swept random-loss rates,
//  - slice-layer fuzz: random chunk sizes through random striping must
//    reassemble bit-exactly,
//  - end-to-end invariant ROUTE-1 under every channel shape.
#include <gtest/gtest.h>

#include <tuple>

#include "core/collision_audit.hpp"
#include "core/fabric.hpp"
#include "core/mic_client.hpp"
#include "core/mic_wire.hpp"

namespace mic {
namespace {

using core::Fabric;
using core::FabricOptions;
using core::MicChannel;
using core::MicChannelOptions;
using core::MicServer;

// --- the channel shape matrix ---------------------------------------------------

class ChannelMatrix
    : public ::testing::TestWithParam<std::tuple<int, int, int, bool>> {};

TEST_P(ChannelMatrix, DeliversAndStaysCollisionFree) {
  const auto [flows, mns, decoys, use_ssl] = GetParam();

  Fabric fabric;
  MicServer server(fabric.host(12), 7000, fabric.rng(), use_ssl);
  std::vector<std::uint8_t> received;
  server.set_on_channel([&](core::MicServerChannel& channel) {
    channel.set_on_data([&](const transport::ChunkView& view) {
      received.insert(received.end(), view.bytes.begin(), view.bytes.end());
    });
  });

  // A recognizable pattern so reassembly errors cannot hide.
  std::vector<std::uint8_t> payload(96 * 1024);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 131 + (i >> 7));
  }

  MicChannelOptions options;
  options.responder_ip = fabric.ip(12);
  options.responder_port = 7000;
  options.flow_count = flows;
  options.mn_count = mns;
  options.multicast_decoys = decoys;
  options.use_ssl = use_ssl;
  MicChannel channel(fabric.host(0), fabric.mc(), options, fabric.rng());

  // ROUTE-1 while the transfer runs: no packet links the endpoints.
  const net::Ipv4 init_ip = fabric.ip(0);
  const net::Ipv4 resp_ip = fabric.ip(12);
  std::uint64_t linking = 0;
  fabric.network().add_global_tap(
      [&](topo::LinkId, topo::NodeId, topo::NodeId, const net::Packet& p,
          sim::SimTime) {
        const bool a = p.src == init_ip || p.dst == init_ip;
        const bool b = p.src == resp_ip || p.dst == resp_ip;
        linking += a && b;
      });

  channel.send(transport::Chunk::real(payload));
  fabric.simulator().run_until();

  ASSERT_FALSE(channel.failed()) << channel.error();
  EXPECT_EQ(received, payload);
  EXPECT_EQ(linking, 0u);
  const auto audit = core::audit_collisions(fabric.mc());
  EXPECT_TRUE(audit.ok) << (audit.violations.empty()
                                ? ""
                                : audit.violations.front());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ChannelMatrix,
    ::testing::Values(
        std::make_tuple(1, 1, 0, false), std::make_tuple(1, 3, 0, false),
        std::make_tuple(1, 5, 0, false), std::make_tuple(2, 3, 0, false),
        std::make_tuple(4, 3, 0, false), std::make_tuple(1, 3, 2, false),
        std::make_tuple(2, 2, 1, false), std::make_tuple(1, 3, 0, true),
        std::make_tuple(3, 4, 0, true), std::make_tuple(2, 3, 2, true)),
    [](const ::testing::TestParamInfo<std::tuple<int, int, int, bool>>& shape) {
      return "F" + std::to_string(std::get<0>(shape.param)) + "N" +
             std::to_string(std::get<1>(shape.param)) + "D" +
             std::to_string(std::get<2>(shape.param)) +
             (std::get<3>(shape.param) ? "Ssl" : "Tcp");
    });

// --- TCP under swept loss ---------------------------------------------------------

class TcpLossSweep : public ::testing::TestWithParam<int> {};

TEST_P(TcpLossSweep, TransferSurvives) {
  const double loss = GetParam() / 1000.0;
  FabricOptions options;
  options.link.random_drop_probability = loss;
  options.seed = 17 + static_cast<std::uint64_t>(GetParam());
  Fabric fabric(options);

  constexpr std::uint64_t kBytes = 512 * 1024;
  std::uint64_t received = 0;
  fabric.host(12).listen(6000, [&](transport::TcpConnection& conn) {
    conn.set_on_data(
        [&](const transport::ChunkView& view) { received += view.length; });
  });
  auto& conn = fabric.host(0).connect(fabric.ip(12), 6000);
  conn.set_on_ready([&] { conn.send(transport::Chunk::virtual_bytes(kBytes)); });
  fabric.simulator().run_until();
  EXPECT_EQ(received, kBytes) << "at loss rate " << loss;
}

INSTANTIATE_TEST_SUITE_P(LossPermille, TcpLossSweep,
                         ::testing::Values(0, 1, 2, 5, 10, 20));

// --- slice-layer fuzz ---------------------------------------------------------------

class SliceFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SliceFuzz, RandomChunksReassembleExactly) {
  // Drive the slice writer/parser/reorderer directly (no network): N
  // logical flows, random chunk sizes, random interleaving at delivery.
  Rng rng(GetParam());
  const int flow_count = 1 + static_cast<int>(rng.below(6));

  // Writer: slice a random byte pattern across flows.
  std::vector<std::uint8_t> original(
      1000 + rng.below(200000));
  for (auto& b : original) b = static_cast<std::uint8_t>(rng.next());

  struct FlowBuf {
    std::vector<transport::Chunk> wire;  // header/payload chunks in order
  };
  std::vector<FlowBuf> flow_bufs(static_cast<std::size_t>(flow_count));

  std::uint32_t seq = 0;
  std::uint64_t offset = 0;
  while (offset < original.size()) {
    const std::uint64_t len =
        std::min<std::uint64_t>(original.size() - offset,
                                1 + rng.below(48 * 1024));
    const std::size_t flow = rng.below(flow_bufs.size());
    core::SliceHeader header;
    header.channel = 7;
    header.seq = seq++;
    header.length = static_cast<std::uint32_t>(len);
    header.flow = static_cast<std::uint16_t>(flow);
    flow_bufs[flow].wire.push_back(
        transport::Chunk::real(core::serialize_slice_header(header)));
    flow_bufs[flow].wire.push_back(transport::Chunk::real(
        std::vector<std::uint8_t>(original.begin() + static_cast<long>(offset),
                                  original.begin() +
                                      static_cast<long>(offset + len))));
    offset += len;
  }

  // Reader: parsers per flow, deliveries interleaved randomly across flows
  // and fragmented at random boundaries (as TCP would).
  std::vector<core::SliceParser> parsers(flow_bufs.size());
  core::SliceReorderer reorderer;
  std::vector<std::uint8_t> reassembled;

  std::vector<std::size_t> cursor(flow_bufs.size(), 0);
  std::vector<std::uint64_t> intra(flow_bufs.size(), 0);
  auto flows_left = [&] {
    for (std::size_t f = 0; f < flow_bufs.size(); ++f) {
      if (cursor[f] < flow_bufs[f].wire.size()) return true;
    }
    return false;
  };
  while (flows_left()) {
    const std::size_t f = rng.below(flow_bufs.size());
    if (cursor[f] >= flow_bufs[f].wire.size()) continue;
    const transport::Chunk& chunk = flow_bufs[f].wire[cursor[f]];
    const std::uint64_t remaining = chunk.length - intra[f];
    const std::uint64_t take = 1 + rng.below(remaining);
    transport::Chunk piece =
        transport::sub_chunk(chunk, intra[f], take);
    intra[f] += take;
    if (intra[f] == chunk.length) {
      intra[f] = 0;
      ++cursor[f];
    }
    const transport::ChunkView view{piece.length,
                                    piece.is_real()
                                        ? std::span<const std::uint8_t>(
                                              *piece.data)
                                        : std::span<const std::uint8_t>{}};
    parsers[f].feed(view, [&](const core::SliceHeader& header,
                              transport::Chunk payload) {
      reorderer.push(header.seq, std::move(payload),
                     [&](transport::Chunk ordered) {
                       ASSERT_TRUE(ordered.is_real());
                       reassembled.insert(reassembled.end(),
                                          ordered.data->begin(),
                                          ordered.data->end());
                     });
    });
  }

  EXPECT_EQ(reassembled, original);
  EXPECT_EQ(reorderer.buffered(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SliceFuzz,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808));

// --- crypto round-trip sweeps ---------------------------------------------------------

class CryptoRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CryptoRoundTrip, ChaChaAndAesAtEverySize) {
  const std::size_t size = GetParam();
  Rng rng(size + 1);
  std::vector<std::uint8_t> data(size);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  const auto original = data;

  crypto::ChaCha20::Key ck{};
  crypto::ChaCha20::Nonce nonce{};
  for (auto& b : ck) b = static_cast<std::uint8_t>(rng.next());
  crypto::ChaCha20::crypt(ck, nonce, data);
  if (size > 0) {
    EXPECT_NE(data, original);
  }
  crypto::ChaCha20::crypt(ck, nonce, data);
  EXPECT_EQ(data, original);

  crypto::Aes128::Key ak{};
  crypto::Aes128::Block iv{};
  for (auto& b : ak) b = static_cast<std::uint8_t>(rng.next());
  crypto::aes128_ctr(ak, iv, data);
  if (size > 0) {
    EXPECT_NE(data, original);
  }
  crypto::aes128_ctr(ak, iv, data);
  EXPECT_EQ(data, original);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CryptoRoundTrip,
                         ::testing::Values(0, 1, 15, 16, 17, 63, 64, 65, 505,
                                           1460, 16384));

}  // namespace
}  // namespace mic
