// Controller crash-recovery: the write-ahead channel journal (round-trip,
// compaction, truncation), crash()/recover() with switch resync and
// orphan-rule reconciliation (RC-1), client-side survival of controller
// silence (establishment timeout, heartbeat re-attach), and the satellite
// behaviours that ride along: the PathEngine LRU row cap, selective L3
// reinstall counters, and destination-batched establishment.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/audit_registry.hpp"
#include "core/channel_journal.hpp"
#include "core/fabric.hpp"
#include "core/mic_client.hpp"
#include "topology/fattree.hpp"
#include "topology/path_engine.hpp"

namespace mic::core {
namespace {

/// Fabric + responder + one-line counters, like the chaos-test beds.
struct RecoveryBed {
  explicit RecoveryBed(FabricOptions fo = {}) : fabric(fo) {
    server = std::make_unique<MicServer>(fabric.host(12), 7000, fabric.rng());
    server->set_on_channel([this](MicServerChannel& channel) {
      channel.set_on_data([this](const transport::ChunkView& view) {
        received += view.length;
      });
    });
  }

  MicChannelOptions options() {
    MicChannelOptions o;
    o.responder_ip = fabric.ip(12);
    o.responder_port = 7000;
    return o;
  }

  std::unique_ptr<MicChannel> client(std::size_t host,
                                     MicChannelOptions o) {
    return std::make_unique<MicChannel>(fabric.host(host), fabric.mc(), o,
                                        fabric.rng());
  }

  void run() { fabric.simulator().run_until(); }
  void run_for(sim::SimTime dt) {
    fabric.simulator().run_until(fabric.simulator().now() + dt);
  }

  Fabric fabric;
  std::unique_ptr<MicServer> server;
  std::uint64_t received = 0;
};

// --- journal -----------------------------------------------------------------

TEST(ChannelJournal, ReplayMatchesLiveChannelsAcrossTeardown) {
  RecoveryBed bed;
  auto c1 = bed.client(0, bed.options());
  auto c2 = bed.client(3, bed.options());
  bed.run();
  ASSERT_TRUE(c1->ready());
  ASSERT_TRUE(c2->ready());

  const ChannelJournal& journal = bed.fabric.mc().journal();
  JournalImage image = journal.replay();
  ASSERT_EQ(image.channels.size(), 2u);
  for (const ChannelId id : bed.fabric.mc().channel_ids()) {
    ASSERT_TRUE(image.channels.contains(id));
    EXPECT_TRUE(
        structurally_equal(image.channels.at(id), *bed.fabric.mc().channel(id)));
  }
  // The high-water marks cover every id that may be wired into a switch.
  EXPECT_GT(image.next_channel, c2->id());

  // A teardown folds into the replay as an absence, not a special case.
  const ChannelId gone = c1->id();
  c1->close();
  bed.run();
  image = bed.fabric.mc().journal().replay();
  EXPECT_EQ(image.channels.size(), 1u);
  EXPECT_FALSE(image.channels.contains(gone));
  EXPECT_GE(journal.appends(), 3u);  // two establishes + a tombstone
}

TEST(ChannelJournal, AutoCompactionBoundsTheLog) {
  FabricOptions fo;
  fo.mic.journal_compaction_threshold = 4;
  RecoveryBed bed(fo);

  // Churn: establish + teardown repeatedly so tombstones pile up past the
  // threshold and compaction rewrites the log as snapshots.
  for (int i = 0; i < 6; ++i) {
    auto c = bed.client(static_cast<std::size_t>(i % 4), bed.options());
    bed.run();
    ASSERT_TRUE(c->ready());
    c->close();
    bed.run();
  }
  auto keeper = bed.client(5, bed.options());
  bed.run();
  ASSERT_TRUE(keeper->ready());

  const ChannelJournal& journal = bed.fabric.mc().journal();
  EXPECT_GT(journal.compactions(), 0u);
  EXPECT_LE(journal.size(), 4u + 1u);  // threshold + the latest append
  const JournalImage image = journal.replay();
  ASSERT_EQ(image.channels.size(), 1u);
  EXPECT_TRUE(image.channels.contains(keeper->id()));
  // Compaction must not lose the allocator high-water marks.
  EXPECT_GT(image.next_channel, keeper->id());
}

TEST(ChannelJournal, TruncateTailModelsACrashMidCommit) {
  RecoveryBed bed;
  auto c1 = bed.client(0, bed.options());
  bed.run();
  auto c2 = bed.client(3, bed.options());
  bed.run();
  ASSERT_TRUE(c1->ready());
  ASSERT_TRUE(c2->ready());

  ChannelJournal damaged = bed.fabric.mc().journal();
  damaged.truncate_tail(1);  // the second establish never hit stable storage
  const JournalImage image = damaged.replay();
  ASSERT_EQ(image.channels.size(), 1u);
  EXPECT_TRUE(image.channels.contains(c1->id()));
  EXPECT_FALSE(image.channels.contains(c2->id()));
}

// --- crash / recover ---------------------------------------------------------

TEST(CrashRecovery, DataPlaneOutlivesACrashedController) {
  RecoveryBed bed;
  auto client = bed.client(0, bed.options());
  bed.run();
  ASSERT_TRUE(client->ready());

  bed.fabric.mc().crash();
  EXPECT_TRUE(bed.fabric.mc().crashed());

  // Control plane: silent (a synchronous establish is refused, the async
  // path simply never answers).
  EstablishRequest request;
  request.initiator_ip = bed.fabric.ip(1);
  request.responder_ip = bed.fabric.ip(12);
  request.responder_port = 7000;
  request.initiator_sports = {41001};
  EXPECT_FALSE(bed.fabric.mc().establish(request).ok);

  // Data plane: the installed rules keep forwarding without the MC.
  constexpr std::uint64_t kBytes = 128 * 1024;
  client->send(transport::Chunk::virtual_bytes(kBytes));
  bed.run();
  EXPECT_EQ(bed.received, kBytes);

  const auto report = bed.fabric.mc().recover(bed.fabric.mc().journal());
  EXPECT_FALSE(bed.fabric.mc().crashed());
  EXPECT_EQ(report.channels_recovered, 1u);
  bed.run();
  EXPECT_TRUE(audit::run_all(bed.fabric).ok);
}

TEST(CrashRecovery, CleanJournalRecoversEverythingInPlace) {
  RecoveryBed bed;
  auto c1 = bed.client(0, bed.options());
  auto c2 = bed.client(3, bed.options());
  bed.run();
  ASSERT_TRUE(c1->ready() && c2->ready());
  const std::uint64_t rules_before =
      audit::run_all(bed.fabric).check("FD-1").metric("mflow_rules");

  bed.fabric.mc().crash();
  const auto report = bed.fabric.mc().recover(bed.fabric.mc().journal());
  bed.run();

  // Nothing moved: every switch already held exactly its journaled rules,
  // so recovery verifies in place and issues zero flow-mods.
  EXPECT_EQ(report.channels_recovered, 2u);
  EXPECT_EQ(report.channels_kept, 2u);
  EXPECT_EQ(report.channels_reinstalled, 0u);
  EXPECT_EQ(report.channels_replanned, 0u);
  EXPECT_EQ(report.channels_lost, 0u);
  EXPECT_EQ(report.orphan_rules_removed, 0u);
  EXPECT_GT(report.switches_resynced, 0u);

  const audit::RunReport audit = audit::run_all(bed.fabric);
  EXPECT_TRUE(audit.ok) << audit.first_violation();
  EXPECT_EQ(audit.check("FD-1").metric("mflow_rules"), rules_before);

  // Surviving channels still deliver byte-for-byte.
  constexpr std::uint64_t kBytes = 64 * 1024;
  c1->send(transport::Chunk::virtual_bytes(kBytes));
  c2->send(transport::Chunk::virtual_bytes(kBytes));
  bed.run();
  EXPECT_EQ(bed.received, 2 * kBytes);
  EXPECT_EQ(bed.fabric.mc().crashes(), 1u);
}

TEST(CrashRecovery, TruncatedJournalSweepsTheUnexplainedChannel) {
  RecoveryBed bed;
  auto c1 = bed.client(0, bed.options());
  bed.run();
  auto c2 = bed.client(3, bed.options());
  bed.run();
  ASSERT_TRUE(c1->ready() && c2->ready());

  bed.fabric.mc().crash();
  ChannelJournal damaged = bed.fabric.mc().journal();
  damaged.truncate_tail(1);  // c2's establish record is gone
  const auto report = bed.fabric.mc().recover(damaged);
  bed.run();

  // The journal can no longer explain c2's rules: reconcile-by-audit tears
  // down every cookie the replayed image does not own.
  EXPECT_EQ(report.channels_recovered, 1u);
  EXPECT_GT(report.orphan_rules_removed, 0u);
  EXPECT_EQ(bed.fabric.mc().active_channel_count(), 1u);
  EXPECT_EQ(bed.fabric.mc().channel(c2->id()), nullptr);

  const audit::RunReport audit = audit::run_all(bed.fabric);
  EXPECT_TRUE(audit.ok) << audit.first_violation();

  // The survivor is untouched.
  constexpr std::uint64_t kBytes = 64 * 1024;
  c1->send(transport::Chunk::virtual_bytes(kBytes));
  bed.run();
  EXPECT_EQ(bed.received, kBytes);
}

TEST(CrashRecovery, RecoveryRepairsChannelsWhoseLinksDiedMeanwhile) {
  // The MC is down when a path link fails: nobody repairs, nothing is
  // lost -- recovery's failure-view resync derives the cut from the PHY
  // and re-plans the stranded channel before reopening the control plane.
  RecoveryBed bed;
  auto client = bed.client(0, bed.options());
  bed.run();
  ASSERT_TRUE(client->ready());
  const auto& plan = bed.fabric.mc().channel(client->id())->flows[0];
  const topo::LinkId victim = bed.fabric.network().graph().link_between(
      plan.path[plan.path.size() / 2], plan.path[plan.path.size() / 2 + 1]);

  bed.fabric.mc().crash();
  bed.fabric.network().set_link_up(victim, false);
  bed.run();  // the port-status reports fall on deaf ears

  const auto report = bed.fabric.mc().recover(bed.fabric.mc().journal());
  bed.run();
  EXPECT_GT(report.links_resynced, 0u);
  EXPECT_EQ(report.channels_replanned, 1u);
  EXPECT_TRUE(bed.fabric.mc().failed_links().contains(victim));

  constexpr std::uint64_t kBytes = 64 * 1024;
  client->send(transport::Chunk::virtual_bytes(kBytes));
  bed.run();
  EXPECT_EQ(bed.received, kBytes);

  bed.fabric.network().set_link_up(victim, true);
  bed.run();
  EXPECT_TRUE(bed.fabric.mc().failed_links().empty());
  EXPECT_TRUE(audit::run_all(bed.fabric).ok);
}

// --- client-side survival ----------------------------------------------------

TEST(ClientSurvival, EstablishmentRetriesAcrossControllerOutage) {
  RecoveryBed bed;
  bed.fabric.mc().crash();

  // Recovery lands 5 ms in; the client's timeout machinery must bridge it.
  bed.fabric.simulator().schedule_in(sim::milliseconds(5), [&bed] {
    bed.fabric.mc().recover(bed.fabric.mc().journal());
  });

  MicChannelOptions o = bed.options();
  o.control_timeout = sim::milliseconds(1);
  o.control_retry_limit = 16;
  auto client = bed.client(0, o);
  bed.run();

  EXPECT_TRUE(client->ready());
  EXPECT_FALSE(client->failed());
  EXPECT_GE(client->controller_silences(), 1u);

  constexpr std::uint64_t kBytes = 64 * 1024;
  client->send(transport::Chunk::virtual_bytes(kBytes));
  bed.run();
  EXPECT_EQ(bed.received, kBytes);
  EXPECT_TRUE(audit::run_all(bed.fabric).ok);
}

TEST(ClientSurvival, SilenceBudgetExhaustionFailsTheChannel) {
  RecoveryBed bed;
  bed.fabric.mc().crash();  // and never recovers

  MicChannelOptions o = bed.options();
  o.control_timeout = sim::milliseconds(1);
  o.control_retry_limit = 3;
  auto client = bed.client(0, o);
  bed.run();

  EXPECT_TRUE(client->failed());
  EXPECT_FALSE(client->ready());
  EXPECT_EQ(client->controller_silences(), 4u);  // limit + the final straw
  EXPECT_NE(client->error().find("unreachable"), std::string::npos);
}

TEST(ClientSurvival, HeartbeatReattachesTheListenerAfterRecovery) {
  // crash() wipes channel listeners; without the heartbeat a kept channel
  // would never hear about later repairs.  The probe re-registers on its
  // next beat, so a post-recovery link cut is announced as kRepaired.
  RecoveryBed bed;
  MicChannelOptions o = bed.options();
  o.heartbeat_interval = sim::milliseconds(1);
  // Generous: the first contact pays the ~4.5 ms DH key exchange before
  // the request even leaves, and that must not read as MC silence.
  o.control_timeout = sim::milliseconds(10);
  auto client = bed.client(0, o);
  bed.run_for(sim::milliseconds(20));
  ASSERT_TRUE(client->ready());

  bed.fabric.mc().crash();
  bed.fabric.mc().recover(bed.fabric.mc().journal());
  ASSERT_EQ(bed.fabric.mc().last_recovery().channels_kept, 1u);
  bed.run_for(sim::milliseconds(5));  // at least one heartbeat round trip

  const auto& plan = bed.fabric.mc().channel(client->id())->flows[0];
  const topo::LinkId victim = bed.fabric.network().graph().link_between(
      plan.path[plan.path.size() / 2], plan.path[plan.path.size() / 2 + 1]);
  bed.fabric.network().set_link_up(victim, false);
  bed.run_for(sim::milliseconds(10));
  EXPECT_EQ(client->repair_count(), 1u);  // the re-registered listener heard

  bed.fabric.network().set_link_up(victim, true);
  bed.run_for(sim::milliseconds(5));
  const audit::RunReport report = audit::run_all(bed.fabric);
  EXPECT_TRUE(report.ok) << report.first_violation();

  // close() stops the heartbeat, so the simulator can actually drain.
  client->close();
  bed.run();
  EXPECT_TRUE(bed.fabric.simulator().idle());
}

TEST(ClientSurvival, ProbeReportsDeadChannelAndClientReestablishes) {
  // The client's channel was in the truncated journal tail: recovery
  // swept its rules, the heartbeat learns the channel is gone, and
  // auto-reestablishment builds a fresh one.
  RecoveryBed bed;
  MicChannelOptions o = bed.options();
  o.heartbeat_interval = sim::milliseconds(1);
  o.control_timeout = sim::milliseconds(10);
  o.auto_reestablish = true;
  auto client = bed.client(0, o);
  bed.run_for(sim::milliseconds(20));
  ASSERT_TRUE(client->ready());

  bed.fabric.mc().crash();
  ChannelJournal damaged = bed.fabric.mc().journal();
  damaged.truncate_tail(damaged.size());  // stable storage lost everything
  const auto report = bed.fabric.mc().recover(damaged);
  EXPECT_EQ(report.channels_recovered, 0u);
  EXPECT_GT(report.orphan_rules_removed, 0u);

  bed.run_for(sim::milliseconds(30));
  EXPECT_TRUE(client->ready());
  EXPECT_FALSE(client->failed());
  EXPECT_GE(client->reestablish_attempts(), 1);

  constexpr std::uint64_t kBytes = 64 * 1024;
  client->send(transport::Chunk::virtual_bytes(kBytes));
  bed.run_for(sim::milliseconds(50));
  EXPECT_EQ(bed.received, kBytes);
  const audit::RunReport audit = audit::run_all(bed.fabric);
  EXPECT_TRUE(audit.ok) << audit.first_violation();

  client->close();
  bed.run();
  EXPECT_TRUE(bed.fabric.simulator().idle());
}

// --- PathEngine LRU cap (satellite) ------------------------------------------

TEST(PathCacheLru, CapEvictsLeastRecentlyQueriedRow) {
  topo::FatTree ft(4);
  topo::PathEngine engine(ft.graph());
  engine.set_max_rows(2);
  EXPECT_EQ(engine.max_rows(), 2u);

  const auto hosts = ft.graph().hosts();
  const topo::NodeId a = hosts[0], b = hosts[1], c = hosts[2];

  engine.distance(a, a);  // computes row a
  engine.distance(a, b);  // computes row b
  engine.distance(a, a);  // touches a: b is now the LRU row
  engine.distance(a, c);  // computes row c, evicting b
  EXPECT_EQ(engine.cached_rows(), 2u);
  EXPECT_EQ(engine.stats().rows_computed, 3u);
  EXPECT_EQ(engine.stats().rows_evicted, 1u);

  engine.distance(a, a);  // still cached: no recompute
  EXPECT_EQ(engine.stats().rows_computed, 3u);
  engine.distance(a, b);  // was evicted: recomputed, evicting c (LRU)
  EXPECT_EQ(engine.stats().rows_computed, 4u);
  EXPECT_EQ(engine.stats().rows_evicted, 2u);

  // Shrinking the cap evicts down to it immediately.
  engine.set_max_rows(1);
  EXPECT_EQ(engine.cached_rows(), 1u);
  EXPECT_EQ(engine.stats().rows_evicted, 3u);

  std::vector<std::string> violations;
  engine.self_check(violations);
  EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST(PathCacheLru, ControllerConfigCapHoldsThroughEstablishment) {
  FabricOptions fo;
  fo.controller.path_cache_max_rows = 2;
  RecoveryBed bed(fo);
  EXPECT_LE(bed.fabric.mc().path_engine().cached_rows(), 2u);

  auto client = bed.client(0, bed.options());
  bed.run();
  ASSERT_TRUE(client->ready());
  EXPECT_LE(bed.fabric.mc().path_engine().cached_rows(), 2u);
  EXPECT_GT(bed.fabric.mc().path_engine().stats().rows_evicted, 0u);

  constexpr std::uint64_t kBytes = 64 * 1024;
  client->send(transport::Chunk::virtual_bytes(kBytes));
  bed.run();
  EXPECT_EQ(bed.received, kBytes);
  EXPECT_TRUE(audit::run_all(bed.fabric).ok);
}

// --- selective L3 reinstall (satellite) --------------------------------------

TEST(SelectiveReroute, OnlySwitchesWithChangedNextHopsReinstall) {
  RecoveryBed bed;
  const ctrl::RerouteStats before = bed.fabric.mc().reroute_stats();

  // Cut one core-aggregation link.  In a k=4 fat-tree most switches keep
  // identical next-hop sets (multipath absorbs the loss), so the reroute
  // must skip them and reinstall only the switches the cut actually moved.
  const auto& graph = bed.fabric.network().graph();
  topo::LinkId victim = topo::kInvalidLink;
  for (const topo::NodeId core : bed.fabric.fattree().core_switches()) {
    for (const auto& adj : graph.neighbors(core)) {
      victim = adj.link;
      break;
    }
    if (victim != topo::kInvalidLink) break;
  }
  ASSERT_NE(victim, topo::kInvalidLink);
  bed.fabric.network().set_link_up(victim, false);
  bed.run();

  const ctrl::RerouteStats after = bed.fabric.mc().reroute_stats();
  EXPECT_GT(after.reroutes, before.reroutes);
  EXPECT_GT(after.switches_scanned, before.switches_scanned);
  EXPECT_GT(after.switches_reinstalled, before.switches_reinstalled);
  EXPECT_GT(after.switches_skipped, before.switches_skipped);
  EXPECT_EQ(after.switches_scanned,
            after.switches_reinstalled + after.switches_skipped);

  bed.fabric.network().set_link_up(victim, true);
  bed.run();
  EXPECT_TRUE(bed.fabric.mc().failed_links().empty());
  EXPECT_TRUE(audit::run_all(bed.fabric).ok);
}

// --- batched establishment (satellite) ---------------------------------------

TEST(EstablishBatch, ResultsComeBackInRequestOrder) {
  RecoveryBed bed;
  bed.fabric.host(13).listen(7100, [](transport::TcpConnection&) {});

  // Interleave two destinations and vary flow counts so each result is
  // attributable to its request by shape.
  std::vector<EstablishRequest> requests;
  for (int i = 0; i < 4; ++i) {
    EstablishRequest r;
    r.initiator_ip = bed.fabric.ip(static_cast<std::size_t>(i));
    r.responder_ip = bed.fabric.ip(i % 2 == 0 ? 12 : 13);
    r.responder_port = i % 2 == 0 ? 7000 : 7100;
    r.flow_count = 1 + i % 3;
    r.initiator_sports.clear();
    for (int f = 0; f < r.flow_count; ++f) {
      r.initiator_sports.push_back(
          static_cast<net::L4Port>(42000 + 10 * i + f));
    }
    requests.push_back(r);
  }

  const std::vector<EstablishResult> results =
      bed.fabric.mc().establish_batch(requests);
  ASSERT_EQ(results.size(), requests.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    SCOPED_TRACE("request " + std::to_string(i));
    ASSERT_TRUE(results[i].ok) << results[i].error;
    EXPECT_EQ(results[i].entries.size(),
              static_cast<std::size_t>(requests[i].flow_count));
  }
  EXPECT_EQ(bed.fabric.mc().active_channel_count(), requests.size());
  // Distinct channels throughout.
  std::vector<ChannelId> ids;
  for (const auto& r : results) ids.push_back(r.channel);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
  EXPECT_TRUE(audit::run_all(bed.fabric).ok);

  // The batch is journaled like any other establishment: a crash right
  // now recovers all of them.
  bed.fabric.mc().crash();
  const auto report = bed.fabric.mc().recover(bed.fabric.mc().journal());
  bed.run();
  EXPECT_EQ(report.channels_recovered, requests.size());
  EXPECT_EQ(report.channels_kept, requests.size());
  EXPECT_TRUE(audit::run_all(bed.fabric).ok);
}

}  // namespace
}  // namespace mic::core
