// The sharded coordinator facade (src/sim/sharded_simulator.hpp): the
// serial-exact interleave must be bit-identical to one engine, parallel
// windows must preserve per-engine schedules while actually executing,
// and the guard rails (veto, lookahead, freeze, current_shard) must hold.
// The audit-registry SIM-3 check runs a randomized differential; these
// tests pin the individual contracts it relies on.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/sharded_simulator.hpp"
#include "sim/simulator.hpp"

namespace mic::sim {
namespace {

TEST(ShardedSimulator, SingleShardIsAPlainEngine) {
  ShardedSimulator sharded;  // shards = 1
  EXPECT_FALSE(sharded.coordinated());
  EXPECT_EQ(&sharded.engine(0), &sharded.global());

  int fired = 0;
  sharded.global().schedule_in(100, [&fired] { ++fired; });
  EXPECT_EQ(sharded.global().run_until(), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sharded.stats().serial_events, 0u);  // no coordinator involved
  EXPECT_EQ(sharded.stats().windows, 0u);
}

TEST(ShardedSimulator, SerialInterleaveMatchesSingleEngine) {
  // The same program -- cross-"shard" chains with identical timestamps --
  // scheduled on one engine and across three-plus-global engines must fire
  // in the identical order.  Same-time events tie-break by seq, i.e. by
  // schedule order, which the shared counter makes global.
  auto program = [](const std::function<Simulator&(int)>& engine_of,
                    Simulator& driver) {
    std::vector<std::string> log;
    for (int s = 0; s < 3; ++s) {
      Simulator& eng = engine_of(s);
      eng.schedule_at(50, [&log, s] {
        log.push_back("a" + std::to_string(s));
      });
      eng.schedule_at(50, [&log, s, &engine_of] {
        log.push_back("b" + std::to_string(s));
        // Chain onto the NEXT engine at the same instant: fires this pass.
        engine_of((s + 1) % 3).schedule_at(50, [&log, s] {
          log.push_back("c" + std::to_string(s));
        });
      });
    }
    engine_of(3).schedule_at(70, [&log] { log.push_back("g"); });
    driver.run_until();
    return log;
  };

  Simulator single;
  const auto single_log =
      program([&single](int) -> Simulator& { return single; }, single);

  ShardedSimulator sharded({.shards = 3, .threads = 1});
  const auto sharded_log = program(
      [&sharded](int s) -> Simulator& { return sharded.engine(s); },
      sharded.global());

  EXPECT_EQ(single_log, sharded_log);
  EXPECT_EQ(sharded.stats().serial_events, single.events_executed());
  EXPECT_TRUE(sharded.coordinate_idle());
}

TEST(ShardedSimulator, SerialRunUntilDeadlineAlignsEveryClock) {
  ShardedSimulator sharded({.shards = 2, .threads = 1});
  int fired = 0;
  sharded.engine(0).schedule_at(100, [&fired] { ++fired; });
  sharded.engine(1).schedule_at(5'000, [&fired] { ++fired; });

  EXPECT_EQ(sharded.global().run_until(1'000), 1u);
  EXPECT_EQ(fired, 1);
  // run_until(deadline) semantics carry over: every engine's clock lands
  // exactly on the deadline even though no event fired there.
  EXPECT_EQ(sharded.engine(0).now(), 1'000u);
  EXPECT_EQ(sharded.engine(1).now(), 1'000u);
  EXPECT_EQ(sharded.global().now(), 1'000u);
  EXPECT_FALSE(sharded.coordinate_idle());

  EXPECT_EQ(sharded.global().run_until(), 1u);
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(sharded.coordinate_idle());
}

/// Builds the standard windowed workload: per-shard self-chaining trains
/// (`chains` fires each, spaced so trains stay inside lookahead windows)
/// plus sparse global punctuation events.  Returns per-engine firing logs.
std::vector<std::vector<SimTime>> run_windowed(ShardedSimulator& sharded,
                                               int chains) {
  const int shards = sharded.shards();
  std::vector<std::vector<SimTime>> logs(
      static_cast<std::size_t>(shards) + 1);
  std::vector<std::unique_ptr<std::function<void()>>> keepers;
  for (int s = 0; s < shards; ++s) {
    Simulator& engine = sharded.engine(s);
    auto fn = std::make_unique<std::function<void()>>();
    auto left = std::make_shared<int>(chains);
    std::function<void()>* fp = fn.get();
    auto* log = &logs[static_cast<std::size_t>(s)];
    const SimTime delta = 100 + static_cast<SimTime>(s) * 37;
    *fp = [&engine, log, delta, left, fp] {
      log->push_back(engine.now());
      if (--*left > 0) engine.schedule_in(delta, *fp);
    };
    engine.schedule_in(delta, *fp);
    keepers.push_back(std::move(fn));
  }
  auto* global_log = &logs[static_cast<std::size_t>(shards)];
  Simulator* global = &sharded.global();
  for (int g = 1; g <= 4; ++g) {
    global->schedule_at(static_cast<SimTime>(g) * 8'000,
                        [global, global_log] {
                          global_log->push_back(global->now());
                        });
  }
  sharded.global().run_until();
  return logs;
}

TEST(ShardedSimulator, ParallelWindowsMatchSerialSchedules) {
  std::vector<std::vector<SimTime>> serial_logs;
  std::uint64_t serial_executed = 0;
  {
    ShardedSimulator sharded({.shards = 3, .threads = 1});
    sharded.set_lookahead(4'000);
    sharded.set_parallel_enabled(false);
    serial_logs = run_windowed(sharded, 200);
    EXPECT_EQ(sharded.stats().windows, 0u);
    serial_executed =
        sharded.stats().serial_events + sharded.stats().window_events;
  }
  ShardedSimulator sharded({.shards = 3, .threads = 1});
  sharded.set_lookahead(4'000);
  sharded.set_parallel_enabled(true);
  const auto parallel_logs = run_windowed(sharded, 200);

  EXPECT_EQ(parallel_logs, serial_logs);
  EXPECT_GT(sharded.stats().windows, 0u);
  EXPECT_GT(sharded.stats().window_events, 0u);
  EXPECT_EQ(sharded.stats().barriers, sharded.stats().windows);
  EXPECT_EQ(sharded.stats().serial_events + sharded.stats().window_events,
            serial_executed);
}

TEST(ShardedSimulator, VetoAndZeroLookaheadSuppressWindows) {
  {
    ShardedSimulator sharded({.shards = 2, .threads = 1});
    sharded.set_lookahead(4'000);
    sharded.set_parallel_enabled(true);
    sharded.set_parallel_veto([] { return true; });  // e.g. taps attached
    run_windowed(sharded, 50);
    EXPECT_EQ(sharded.stats().windows, 0u);
    EXPECT_GT(sharded.stats().serial_events, 0u);
  }
  {
    ShardedSimulator sharded({.shards = 2, .threads = 1});
    sharded.set_parallel_enabled(true);  // but lookahead stays 0
    run_windowed(sharded, 50);
    EXPECT_EQ(sharded.stats().windows, 0u);
  }
  {
    // Parallel windows are strictly opt-in: lookahead alone is not enough.
    ShardedSimulator sharded({.shards = 2, .threads = 1});
    sharded.set_lookahead(4'000);
    run_windowed(sharded, 50);
    EXPECT_EQ(sharded.stats().windows, 0u);
  }
}

TEST(ShardedSimulator, BarrierHookRunsAfterEveryWindowInSerialContext) {
  ShardedSimulator sharded({.shards = 2, .threads = 1});
  sharded.set_lookahead(4'000);
  sharded.set_parallel_enabled(true);
  std::uint64_t hooks = 0;
  sharded.set_barrier_hook([&hooks] {
    EXPECT_EQ(ShardedSimulator::current_shard(), -1);
    ++hooks;
  });
  run_windowed(sharded, 100);
  EXPECT_GT(hooks, 0u);
  EXPECT_EQ(hooks, sharded.stats().barriers);
}

TEST(ShardedSimulator, CurrentShardVisibleInsideWindows) {
  // Outside any window the thread is serial context.
  EXPECT_EQ(ShardedSimulator::current_shard(), -1);

  ShardedSimulator sharded({.shards = 2, .threads = 1});
  sharded.set_lookahead(10'000);
  sharded.set_parallel_enabled(true);
  std::vector<int> seen_shards;
  std::vector<int> seen_serial;
  for (int s = 0; s < 2; ++s) {
    // Two fires per shard, spaced so the second lands inside the window
    // the first opened.
    sharded.engine(s).schedule_at(100, [&seen_shards] {
      seen_shards.push_back(ShardedSimulator::current_shard());
    });
    sharded.engine(s).schedule_at(200, [&seen_shards] {
      seen_shards.push_back(ShardedSimulator::current_shard());
    });
  }
  sharded.global().schedule_at(50'000, [&seen_serial] {
    // The global engine only ever fires in serial context.
    seen_serial.push_back(ShardedSimulator::current_shard());
  });
  sharded.global().run_until();

  ASSERT_EQ(seen_shards.size(), 4u);
  EXPECT_GT(sharded.stats().windows, 0u);
  for (const int shard : seen_shards) {
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, 2);
  }
  ASSERT_EQ(seen_serial.size(), 1u);
  EXPECT_EQ(seen_serial[0], -1);
}

TEST(ShardedSimulator, CancelAcrossEnginesStaysExact) {
  // Cancelling on one engine between runs must behave exactly like the
  // single-engine cancel: the event neither fires nor blocks idle().
  ShardedSimulator sharded({.shards = 2, .threads = 1});
  int fired = 0;
  const EventId doomed =
      sharded.engine(1).schedule_at(500, [&fired] { fired += 100; });
  sharded.engine(0).schedule_at(400, [&fired] { ++fired; });
  sharded.global().run_until(100);
  sharded.engine(1).cancel(doomed);
  sharded.global().run_until();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sharded.coordinate_idle());
}

TEST(ShardedSimulator, ThreadedWindowsMatchCooperative) {
  // Same workload, real worker threads: the schedule (and so the logs)
  // must be identical to the cooperative run.  On a single-core host this
  // still exercises the pool handoff and the freeze/unfreeze sequencing.
  std::vector<std::vector<SimTime>> coop_logs;
  {
    ShardedSimulator sharded({.shards = 3, .threads = 1});
    sharded.set_lookahead(4'000);
    sharded.set_parallel_enabled(true);
    coop_logs = run_windowed(sharded, 150);
    EXPECT_GT(sharded.stats().windows, 0u);
  }
  ShardedSimulator sharded({.shards = 3, .threads = 3});
  EXPECT_EQ(sharded.threads(), 3);
  sharded.set_lookahead(4'000);
  sharded.set_parallel_enabled(true);
  const auto threaded_logs = run_windowed(sharded, 150);
  EXPECT_GT(sharded.stats().windows, 0u);
  EXPECT_EQ(threaded_logs, coop_logs);
}

}  // namespace
}  // namespace mic::sim
