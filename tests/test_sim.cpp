// Tests for the discrete-event engine and the CPU cost model.
#include <gtest/gtest.h>

#include "sim/cpu.hpp"
#include "sim/simulator.hpp"

namespace mic::sim {
namespace {

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator simulator;
  std::vector<int> order;
  simulator.schedule_at(milliseconds(30), [&] { order.push_back(3); });
  simulator.schedule_at(milliseconds(10), [&] { order.push_back(1); });
  simulator.schedule_at(milliseconds(20), [&] { order.push_back(2); });
  simulator.run_until();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(simulator.now(), milliseconds(30));
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator simulator;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    simulator.schedule_at(milliseconds(5), [&order, i] { order.push_back(i); });
  }
  simulator.run_until();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator simulator;
  bool fired = false;
  const EventId id = simulator.schedule_in(seconds(1), [&] { fired = true; });
  simulator.cancel(id);
  simulator.run_until();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(simulator.idle());
}

TEST(Simulator, CancelTwiceIsHarmless) {
  Simulator simulator;
  const EventId id = simulator.schedule_in(seconds(1), [] {});
  simulator.cancel(id);
  simulator.cancel(id);
  simulator.run_until();
  EXPECT_TRUE(simulator.idle());
}

TEST(Simulator, CancelAfterFiringIsANoOp) {
  // Regression: cancelling an already-fired event used to insert a
  // permanent tombstone and wrongly decrement the live-event count, so
  // idle() reported true with live events still pending.
  Simulator simulator;
  int fired = 0;
  const EventId first = simulator.schedule_at(milliseconds(1), [&] { ++fired; });
  simulator.schedule_at(milliseconds(10), [&] { ++fired; });
  simulator.run_until(milliseconds(1));
  EXPECT_EQ(fired, 1);

  simulator.cancel(first);  // already fired: must change nothing
  EXPECT_FALSE(simulator.idle());
  simulator.run_until();
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(simulator.idle());  // live-event count must not underflow
}

TEST(Simulator, CancelUnknownIdIsANoOp) {
  Simulator simulator;
  simulator.schedule_in(seconds(1), [] {});
  simulator.cancel(12345);  // never scheduled
  EXPECT_FALSE(simulator.idle());
  simulator.run_until();
  EXPECT_TRUE(simulator.idle());
}

TEST(Simulator, ReentrantScheduling) {
  Simulator simulator;
  int count = 0;
  std::function<void()> reschedule = [&] {
    if (++count < 5) simulator.schedule_in(milliseconds(1), reschedule);
  };
  simulator.schedule_in(milliseconds(1), reschedule);
  simulator.run_until();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(simulator.now(), milliseconds(5));
}

TEST(Simulator, RunUntilDeadlineStopsAndAdvancesClock) {
  Simulator simulator;
  int fired = 0;
  simulator.schedule_at(milliseconds(10), [&] { ++fired; });
  simulator.schedule_at(milliseconds(100), [&] { ++fired; });
  simulator.run_until(milliseconds(50));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(simulator.now(), milliseconds(50));
  simulator.run_until();
  EXPECT_EQ(fired, 2);
}

// Pins the run_until(deadline) boundary semantics documented on the method:
// an event at exactly `deadline` fires, and the clock lands on the deadline.
TEST(Simulator, RunUntilDeadlineIsInclusive) {
  Simulator simulator;
  std::vector<int> order;
  simulator.schedule_at(milliseconds(10), [&] { order.push_back(1); });
  simulator.schedule_at(milliseconds(10), [&] { order.push_back(2); });
  simulator.schedule_at(milliseconds(10) + 1, [&] { order.push_back(3); });
  EXPECT_EQ(simulator.run_until(milliseconds(10)), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));  // deadline events fired, FIFO
  EXPECT_EQ(simulator.now(), milliseconds(10));
  EXPECT_FALSE(simulator.idle());  // the event 1 ns past the deadline did not
}

// Pins the second documented boundary: schedule_at(now()) from inside a
// callback is legal and the new event fires in the SAME run_until pass,
// before time advances -- even when the pass was bounded at exactly now().
TEST(Simulator, ScheduleAtNowInsideCallbackFiresInSamePass) {
  Simulator simulator;
  std::vector<int> order;
  simulator.schedule_at(milliseconds(5), [&] {
    order.push_back(1);
    simulator.schedule_at(simulator.now(), [&] {
      order.push_back(2);
      simulator.schedule_at(simulator.now(), [&] { order.push_back(3); });
    });
  });
  EXPECT_EQ(simulator.run_until(milliseconds(5)), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(simulator.now(), milliseconds(5));
  EXPECT_TRUE(simulator.idle());
}

// An empty or past-deadline run still advances the clock to the horizon
// (and never moves it backwards).
TEST(Simulator, RunUntilAdvancesClockWithoutEvents) {
  Simulator simulator;
  EXPECT_EQ(simulator.run_until(milliseconds(7)), 0u);
  EXPECT_EQ(simulator.now(), milliseconds(7));
  EXPECT_EQ(simulator.run_until(milliseconds(3)), 0u);  // horizon in the past
  EXPECT_EQ(simulator.now(), milliseconds(7));          // clock is monotone
}

TEST(Simulator, SchedulingIntoThePastDies) {
  Simulator simulator;
  simulator.schedule_at(milliseconds(10), [] {});
  simulator.run_until();
  EXPECT_DEATH(simulator.schedule_at(milliseconds(5), [] {}), "past");
}

TEST(Time, TransmissionDelay) {
  // 1500 bytes at 1 Gb/s = 12 microseconds.
  EXPECT_EQ(transmission_delay(1500, 1'000'000'000), microseconds(12));
  // Rounds up: 1 byte at 1 Gb/s = 8 ns.
  EXPECT_EQ(transmission_delay(1, 1'000'000'000), nanoseconds(8));
}

TEST(CpuMeter, SerializesWork) {
  CpuMeter cpu(1e9);  // 1 GHz: 1 cycle = 1 ns
  const SimTime t1 = cpu.charge(0, 1000);
  EXPECT_EQ(t1, nanoseconds(1000));
  // Work submitted while busy queues behind.
  const SimTime t2 = cpu.charge(500, 1000);
  EXPECT_EQ(t2, nanoseconds(2000));
  // Work submitted when idle starts immediately.
  const SimTime t3 = cpu.charge(5000, 1000);
  EXPECT_EQ(t3, nanoseconds(6000));
  EXPECT_EQ(cpu.busy_time(), nanoseconds(3000));
}

TEST(CpuMeter, UtilizationWindow) {
  CpuMeter cpu(1e9);
  cpu.charge(0, 500);
  const SimTime busy_start = cpu.busy_time();
  cpu.charge(1000, 300);
  const double util = CpuMeter::utilization(busy_start, cpu.busy_time(),
                                            nanoseconds(1000),
                                            nanoseconds(2000));
  EXPECT_DOUBLE_EQ(util, 0.3);
}

TEST(CpuMeter, PaperFrequencyDefault) {
  CpuMeter cpu;  // E5-2620 @ 2 GHz
  EXPECT_DOUBLE_EQ(cpu.frequency_hz(), 2.0e9);
  EXPECT_EQ(cpu.charge(0, 2000), nanoseconds(1000));
}

}  // namespace
}  // namespace mic::sim
