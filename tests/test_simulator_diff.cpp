// Differential scheduler oracle (invariant SIM-2): the timing-wheel
// Simulator and the frozen binary-heap ReferenceSimulator are driven
// through identical randomized programs -- schedule, cancel (including
// stale handles), run_until with random horizons, schedule-inside-callback
// and cancel-inside-callback -- and must never diverge on any observable:
// firing order, now(), idle(), events_executed().
//
// Every event carries a "token", an engine-independent name assigned in
// schedule order.  Because both engines are asserted to fire tokens in the
// same order, each engine can independently derive identical re-entrant
// behavior from splitmix64(seed, token), and token -> EventId maps stay
// mirrored without any cross-engine communication.
//
// The fuzz section runs >10k operations by default (kSeeds x kOpsPerSeed
// plus re-entrant children); MIC_SIM_DIFF_CASES=N scales the per-seed op
// count up for the deeper TSan-tier run wired into scripts/check.sh.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "sim/reference_simulator.hpp"
#include "sim/simulator.hpp"

namespace mic::sim {
namespace {

// Deterministic mixer for per-token decisions, identical in both engines.
std::uint64_t token_mix(std::uint64_t seed, std::uint64_t token,
                        std::uint64_t salt) {
  std::uint64_t state = seed ^ (token * 0x9e3779b97f4a7c15ULL) ^ salt;
  return splitmix64(state);
}

/// One engine plus the bookkeeping needed to mirror a token program.
template <typename Engine>
struct Agent {
  Engine sim;
  std::uint64_t seed;
  bool reentrant;  // token-derived schedule/cancel from inside callbacks
  std::uint64_t next_token = 0;
  std::vector<std::uint64_t> fired;   // tokens, in firing order
  std::vector<std::uint64_t> issued;  // tokens, in schedule order
  std::unordered_map<std::uint64_t, EventId> ids;  // every token ever issued

  explicit Agent(std::uint64_t s, bool re) : seed(s), reentrant(re) {}

  std::uint64_t schedule(SimTime when) {
    const std::uint64_t token = next_token++;
    issued.push_back(token);
    ids[token] = sim.schedule_at(when, [this, token] { fire(token); });
    return token;
  }

  // Cancel by token; deliberately replays stale handles (fired or already
  // cancelled tokens keep their EventId in `ids`), which both engines must
  // treat as a no-op even if the wheel has recycled the node since.
  void cancel_token(std::uint64_t token) { sim.cancel(ids.at(token)); }

  void fire(std::uint64_t token) {
    fired.push_back(token);
    if (!reentrant) return;
    // Re-entrant behavior, derived from (seed, token) so both engines act
    // identically without communicating.
    const std::uint64_t r = token_mix(seed, token, /*salt=*/0x5eed);
    switch (r % 8) {
      case 0:  // schedule a child strictly in the future
        schedule(sim.now() + 1 + (token_mix(seed, token, 1) % 5000));
        break;
      case 1:  // schedule a child at now(): must fire in the SAME pass
        schedule(sim.now());
        break;
      case 2: {  // cancel something (possibly self/fired/cancelled: no-op)
        if (!issued.empty()) {
          cancel_token(issued[token_mix(seed, token, 2) % issued.size()]);
        }
        break;
      }
      case 3: {  // reschedule pattern: cancel + schedule replacement
        if (!issued.empty()) {
          cancel_token(issued[token_mix(seed, token, 3) % issued.size()]);
        }
        schedule(sim.now() + (token_mix(seed, token, 4) % 100));
        break;
      }
      default:  // plain event
        break;
    }
  }
};

struct DiffHarness {
  Agent<Simulator> wheel;
  Agent<ReferenceSimulator> ref;

  explicit DiffHarness(std::uint64_t seed, bool reentrant = true)
      : wheel(seed, reentrant), ref(seed, reentrant) {}

  void schedule(SimTime when) {
    wheel.schedule(when);
    ref.schedule(when);
  }

  void cancel_issued(std::uint64_t pick) {
    if (wheel.issued.empty()) return;
    const std::uint64_t token = wheel.issued[pick % wheel.issued.size()];
    wheel.cancel_token(token);
    ref.cancel_token(token);
  }

  void run_until(SimTime deadline) {
    const std::uint64_t wheel_ran = wheel.sim.run_until(deadline);
    const std::uint64_t ref_ran = ref.sim.run_until(deadline);
    EXPECT_EQ(wheel_ran, ref_ran);
  }

  /// Every observable the two engines share must agree.
  void check(const char* where) {
    ASSERT_EQ(wheel.fired, ref.fired) << where;
    ASSERT_EQ(wheel.sim.now(), ref.sim.now()) << where;
    ASSERT_EQ(wheel.sim.idle(), ref.sim.idle()) << where;
    ASSERT_EQ(wheel.sim.events_executed(), ref.sim.events_executed()) << where;
    ASSERT_EQ(wheel.issued, ref.issued) << where;
  }
};

std::uint64_t ops_per_seed() {
  if (const char* env = std::getenv("MIC_SIM_DIFF_CASES")) {
    const long long parsed = std::atoll(env);
    if (parsed > 0) return static_cast<std::uint64_t>(parsed);
  }
  return 1500;
}

// The SIM-2 fuzz oracle: >10k random operations across seeds (default
// 8 seeds x 1500 top-level ops, plus the re-entrant children they spawn).
TEST(SimulatorDiff, RandomProgramsNeverDiverge) {
  const std::uint64_t kSeeds = 8;
  const std::uint64_t kOps = ops_per_seed();
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    DiffHarness h(seed * 0xD1FF);
    Rng rng(seed * 0xD1FF);
    for (std::uint64_t op = 0; op < kOps; ++op) {
      const std::uint64_t dice = rng.below(100);
      if (dice < 55) {
        // Delay profile mixes dense near-term traffic (exercises level-0
        // slots and intra-slot FIFO), mid-range (cascades), and rare
        // horizons beyond the wheel's 2^48 ns range (overflow list).
        const std::uint64_t kind = rng.below(100);
        SimTime delay;
        if (kind < 55) {
          delay = rng.below(64);  // same-slot / same-epoch collisions
        } else if (kind < 85) {
          delay = rng.below(1'000'000);  // a few ms: multi-level cascades
        } else if (kind < 97) {
          delay = rng.below(1ULL << 40);  // high wheel levels
        } else {
          delay = (1ULL << 48) + rng.below(1ULL << 49);  // overflow list
        }
        h.schedule(h.wheel.sim.now() + delay);
      } else if (dice < 70) {
        h.cancel_issued(rng.next());
      } else if (dice < 93) {
        h.run_until(h.wheel.sim.now() + rng.below(1 << 20));
        h.check("after bounded run_until");
      } else if (dice < 98) {
        // Deep but bounded: drains everything the near-term program
        // created without chasing overflow events 2^48 ns out.
        h.run_until(h.wheel.sim.now() + (1ULL << 44));
        h.check("after deep run_until");
      } else {
        // Mid-program FULL drain.  This is the op that once exposed a lost-
        // event bug: draining past cancelled far-future timers walked the
        // wheel cursor beyond now(), and the next schedule_at() filed into
        // the wheel's past, never to fire.  The program keeps scheduling
        // afterwards, so any cursor damage shows up as a divergence.
        h.run_until(kNever);
        h.check("after mid-program full drain");
        ASSERT_TRUE(h.wheel.sim.idle());
      }
    }
    h.run_until(kNever);
    h.check("after final drain");
    ASSERT_TRUE(h.wheel.sim.idle());
    ASSERT_GT(h.wheel.sim.events_executed(), 0u);
  }
}

// Targeted: events parked beyond the wheel horizon (> 2^48 ns) must refill
// in schedule order and interleave correctly with near-term events.
TEST(SimulatorDiff, OverflowHorizonAgrees) {
  DiffHarness h(0xBEEF, /*reentrant=*/false);
  const SimTime far = (1ULL << 48) + 12345;  // beyond the wheel range
  h.schedule(far);
  h.schedule(far);  // same instant: FIFO must survive the overflow refill
  h.schedule(far - 1);
  h.schedule(milliseconds(1));
  h.run_until(far);
  h.check("overflow drain");
  ASSERT_TRUE(h.wheel.sim.idle());
  ASSERT_EQ(h.wheel.sim.events_executed(), 4u);
}

// Targeted: an event at kNever is legal and fires only on an unbounded run.
TEST(SimulatorDiff, EventAtKNeverAgrees) {
  DiffHarness h(0xCAFE, /*reentrant=*/false);
  h.schedule(kNever);
  h.schedule(seconds(1));
  h.run_until(seconds(5));
  h.check("bounded run leaves kNever pending");
  ASSERT_FALSE(h.wheel.sim.idle());
  h.run_until(kNever);
  h.check("unbounded run fires kNever");
  ASSERT_TRUE(h.wheel.sim.idle());
  ASSERT_EQ(h.wheel.sim.now(), kNever);
}

// Targeted: same-instant FIFO across placement paths.  Tokens scheduled
// for one instant from far away (high wheel level, reaches level 0 by
// cascading) and from close up (direct level-0 filing) must still fire in
// schedule order -- the cascade-before-direct-filing argument in the
// Simulator header, checked against the oracle.
TEST(SimulatorDiff, SameInstantFifoAcrossWheelLevels) {
  DiffHarness h(0xF1F0, /*reentrant=*/false);
  const SimTime target = milliseconds(10);
  h.schedule(target);                    // filed at a high level
  h.schedule(target);                    // same slot, behind the first
  h.run_until(target - nanoseconds(3));  // cursor now within the epoch
  h.schedule(target);                    // direct level-0 filing
  h.schedule(target - nanoseconds(1));   // earlier instant, filed later
  h.run_until(kNever);
  h.check("cross-level same-instant ordering");
  ASSERT_EQ(h.wheel.fired, (std::vector<std::uint64_t>{3, 0, 1, 2}));
}

// Regression (cursor overshoot): a full drain chases tombstones of
// cancelled far-future timers, cascading the wheel cursor toward their
// slots even though nothing remains to fire.  Before run_until(kNever)
// learned to re-anchor the cursor at now(), the cursor could end up far
// PAST now(), and a subsequent perfectly legal schedule_at(now() <= when
// < cursor) was filed into a slot no scan revisits -- the event was lost
// and the engine wedged with live_events > 0.  First seen as 36 chaos-
// soak failures whose flows all stalled waiting on an RTO that never
// fired.
TEST(SimulatorDiff, FullDrainAfterFarCancelDoesNotStrandNextEvent) {
  for (const SimTime far_delay :
       {SimTime{1} << 20, SimTime{1} << 40, (SimTime{1} << 48) + 7}) {
    DiffHarness h(0xD0D0, /*reentrant=*/false);
    h.schedule(seconds(1));
    const std::uint64_t victim = h.wheel.next_token;
    h.schedule(h.wheel.sim.now() + far_delay);  // far-future tombstone bait
    h.wheel.cancel_token(victim);
    h.ref.cancel_token(victim);
    // Full drain: fires the 1 s event, then chases the tombstone's slot.
    h.run_until(kNever);
    h.check("after full drain over a cancelled far timer");
    ASSERT_TRUE(h.wheel.sim.idle());
    // The poisoned window is [now, stale cursor).  An event here must
    // still fire on the very next drain.
    h.schedule(h.wheel.sim.now() + 100);
    h.run_until(kNever);
    h.check("event scheduled inside the formerly poisoned window");
    ASSERT_TRUE(h.wheel.sim.idle());
    ASSERT_EQ(h.wheel.sim.events_executed(), 2u);
  }
}

// The wheel recycles nodes through a freelist, so a schedule/cancel
// heartbeat that runs forever must not grow the pool (the old engine grew
// its pending_/cancelled_ tombstone sets without bound).  One chunk of
// nodes absorbs 10^6 cycles.
TEST(SimulatorDiff, TombstoneChurnDoesNotGrowPool) {
  Simulator sim;
  for (int i = 0; i < 1'000'000; ++i) {
    const EventId id = sim.schedule_in(milliseconds(10), [] {});
    sim.cancel(id);
  }
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.stats().scheduled, 1'000'000u);
  EXPECT_EQ(sim.stats().cancelled, 1'000'000u);
  // High-water mark: a single armed timer needs a single node; the pool
  // never grows past its first chunk.
  EXPECT_LE(sim.stats().nodes_allocated, 256u);
  EXPECT_EQ(sim.stats().heap_callbacks, 0u);
}

// Same bound for the armed-heartbeat variant: cancel-then-rearm, the RTO
// pattern TCP runs on every ACK.
TEST(SimulatorDiff, RearmHeartbeatDoesNotGrowPool) {
  Simulator sim;
  EventId timer = 0;
  for (int i = 0; i < 1'000'000; ++i) {
    if (timer != 0) sim.cancel(timer);
    timer = sim.schedule_in(milliseconds(200), [] {});
  }
  sim.cancel(timer);
  EXPECT_TRUE(sim.idle());
  EXPECT_LE(sim.stats().nodes_allocated, 256u);
}

// A cancelled node's EventId dies with it: after the node is recycled for
// a new event, the stale handle must not cancel the newcomer.
TEST(SimulatorDiff, StaleHandleCannotCancelRecycledNode) {
  Simulator sim;
  const EventId stale = sim.schedule_in(seconds(1), [] {});
  sim.cancel(stale);
  bool fired = false;
  sim.schedule_in(seconds(2), [&] { fired = true; });  // reuses the node
  sim.cancel(stale);  // generation mismatch: must be a no-op
  sim.run_until();
  EXPECT_TRUE(fired);
}

}  // namespace
}  // namespace mic::sim
