// Tests for the SDN switch data plane: match semantics, priorities,
// rewrite actions, ALL groups, packet-in, cookies.
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "switchd/sdn_switch.hpp"

namespace mic::switchd {
namespace {

net::Packet make_packet(net::Ipv4 src, net::Ipv4 dst, net::L4Port sport = 100,
                        net::L4Port dport = 200,
                        net::MplsLabel mpls = net::kNoMpls) {
  net::Packet p;
  p.src = src;
  p.dst = dst;
  p.sport = sport;
  p.dport = dport;
  p.mpls = mpls;
  p.tcp.payload_len = 64;
  return p;
}

TEST(Match, WildcardMatchesAll) {
  const Match match;
  EXPECT_TRUE(match.matches(make_packet({10, 0, 0, 1}, {10, 0, 0, 2}), 0));
  EXPECT_TRUE(
      match.matches(make_packet({1, 2, 3, 4}, {5, 6, 7, 8}, 1, 2, 99), 7));
}

TEST(Match, ExactFields) {
  Match match;
  match.src = net::Ipv4(10, 0, 0, 1);
  match.dst = net::Ipv4(10, 0, 0, 2);
  match.sport = 100;
  match.dport = 200;
  EXPECT_TRUE(match.matches(make_packet({10, 0, 0, 1}, {10, 0, 0, 2}), 0));
  EXPECT_FALSE(match.matches(make_packet({10, 0, 0, 9}, {10, 0, 0, 2}), 0));
  EXPECT_FALSE(
      match.matches(make_packet({10, 0, 0, 1}, {10, 0, 0, 2}, 100, 201), 0));
}

TEST(Match, InPort) {
  Match match;
  match.in_port = 3;
  EXPECT_TRUE(match.matches(make_packet({1, 1, 1, 1}, {2, 2, 2, 2}), 3));
  EXPECT_FALSE(match.matches(make_packet({1, 1, 1, 1}, {2, 2, 2, 2}), 2));
}

TEST(Match, MplsSemantics) {
  Match labeled;
  labeled.mpls = 77;
  EXPECT_TRUE(
      labeled.matches(make_packet({1, 1, 1, 1}, {2, 2, 2, 2}, 1, 2, 77), 0));
  EXPECT_FALSE(
      labeled.matches(make_packet({1, 1, 1, 1}, {2, 2, 2, 2}, 1, 2, 78), 0));
  EXPECT_FALSE(labeled.matches(make_packet({1, 1, 1, 1}, {2, 2, 2, 2}), 0));

  Match untagged;
  untagged.require_no_mpls = true;
  EXPECT_TRUE(untagged.matches(make_packet({1, 1, 1, 1}, {2, 2, 2, 2}), 0));
  EXPECT_FALSE(
      untagged.matches(make_packet({1, 1, 1, 1}, {2, 2, 2, 2}, 1, 2, 77), 0));
}

TEST(FlowTable, PriorityOrderAndFirstInstalledWins) {
  FlowTable table;
  FlowRule low;
  low.priority = 10;
  low.cookie = 1;
  FlowRule high;
  high.priority = 100;
  high.match.src = net::Ipv4(10, 0, 0, 1);
  high.cookie = 2;
  ASSERT_TRUE(table.add_rule(low));
  ASSERT_TRUE(table.add_rule(high));

  auto p = make_packet({10, 0, 0, 1}, {10, 0, 0, 2});
  FlowRule* hit = table.lookup(p, 0, p.wire_bytes());
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->cookie, 2u);

  auto other = make_packet({10, 0, 0, 9}, {10, 0, 0, 2});
  hit = table.lookup(other, 0, other.wire_bytes());
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->cookie, 1u);
}

TEST(FlowTable, DuplicateMatchRejected) {
  FlowTable table;
  FlowRule rule;
  rule.priority = 10;
  rule.match.dst = net::Ipv4(10, 0, 0, 2);
  EXPECT_TRUE(table.add_rule(rule));
  EXPECT_FALSE(table.add_rule(rule));
  EXPECT_EQ(table.rule_count(), 1u);
  // Same match at another priority is allowed.
  rule.priority = 20;
  EXPECT_TRUE(table.add_rule(rule));
}

TEST(FlowTable, CountersUpdateOnHit) {
  FlowTable table;
  FlowRule rule;
  rule.priority = 1;
  ASSERT_TRUE(table.add_rule(rule));
  auto p = make_packet({1, 1, 1, 1}, {2, 2, 2, 2});
  table.lookup(p, 0, p.wire_bytes());
  table.lookup(p, 0, p.wire_bytes());
  EXPECT_EQ(table.rules()[0].packet_count, 2u);
  EXPECT_EQ(table.rules()[0].byte_count, 2ull * p.wire_bytes());
}

TEST(FlowTable, RemoveByCookie) {
  FlowTable table;
  for (int i = 0; i < 5; ++i) {
    FlowRule rule;
    rule.priority = static_cast<std::uint16_t>(i);
    rule.cookie = i % 2 == 0 ? 42 : 7;
    ASSERT_TRUE(table.add_rule(rule));
  }
  EXPECT_EQ(table.remove_by_cookie(42), 3u);
  EXPECT_EQ(table.rule_count(), 2u);
}

TEST(FlowTable, GroupsByCookie) {
  FlowTable table;
  GroupEntry g1{1, GroupType::kAll, {{Output{0}}}, 9};
  GroupEntry g2{2, GroupType::kAll, {{Output{1}}}, 9};
  EXPECT_TRUE(table.add_group(g1));
  EXPECT_TRUE(table.add_group(g2));
  EXPECT_FALSE(table.add_group(g1));  // duplicate id
  EXPECT_NE(table.group(1), nullptr);
  EXPECT_EQ(table.remove_groups_by_cookie(9), 2u);
  EXPECT_EQ(table.group(1), nullptr);
}

TEST(FlowTable, MissCounter) {
  FlowTable table;
  auto p = make_packet({1, 1, 1, 1}, {2, 2, 2, 2});
  EXPECT_EQ(table.lookup(p, 0, p.wire_bytes()), nullptr);
  EXPECT_EQ(table.miss_count(), 1u);
  EXPECT_EQ(table.stats().lookups, 1u);
  EXPECT_EQ(table.stats().misses, 1u);
}

// --- the two-tier lookup ------------------------------------------------------

Match exact_match(net::Ipv4 src, net::Ipv4 dst, net::L4Port sport,
                  net::L4Port dport, net::MplsLabel mpls,
                  topo::PortId in_port = 0) {
  Match m;
  m.in_port = in_port;
  m.src = src;
  m.dst = dst;
  m.sport = sport;
  m.dport = dport;
  if (mpls == net::kNoMpls) {
    m.require_no_mpls = true;
  } else {
    m.mpls = mpls;
  }
  return m;
}

TEST(FlowTable, ExactRulesAreIndexed) {
  FlowTable table;
  FlowRule exact;
  exact.priority = 100;
  exact.match = exact_match({10, 0, 0, 1}, {10, 0, 0, 2}, 100, 200, 7);
  exact.cookie = 1;
  FlowRule wildcard;
  wildcard.priority = 1;
  wildcard.cookie = 2;
  ASSERT_TRUE(table.add_rule(exact));
  ASSERT_TRUE(table.add_rule(wildcard));
  EXPECT_EQ(table.indexed_rule_count(), 1u);

  auto hit = make_packet({10, 0, 0, 1}, {10, 0, 0, 2}, 100, 200, 7);
  FlowRule* rule = table.lookup(hit, 0, hit.wire_bytes());
  ASSERT_NE(rule, nullptr);
  EXPECT_EQ(rule->cookie, 1u);
  EXPECT_EQ(table.stats().index_hits, 1u);
  EXPECT_EQ(table.stats().scan_fallbacks, 0u);

  auto other = make_packet({10, 0, 0, 9}, {10, 0, 0, 2});
  rule = table.lookup(other, 0, other.wire_bytes());
  ASSERT_NE(rule, nullptr);
  EXPECT_EQ(rule->cookie, 2u);
  EXPECT_EQ(table.stats().scan_fallbacks, 1u);
  EXPECT_EQ(table.stats().lookups, 2u);
}

TEST(FlowTable, IndexedHitLosesToHigherPriorityWildcard) {
  FlowTable table;
  FlowRule exact;
  exact.priority = 100;
  exact.match = exact_match({10, 0, 0, 1}, {10, 0, 0, 2}, 100, 200, 7);
  exact.cookie = 1;
  FlowRule punt;  // e.g. a decoy-drop-style classifier above the m-flow tier
  punt.priority = 110;
  punt.match.src = net::Ipv4(10, 0, 0, 1);
  punt.cookie = 2;
  ASSERT_TRUE(table.add_rule(exact));
  ASSERT_TRUE(table.add_rule(punt));

  auto p = make_packet({10, 0, 0, 1}, {10, 0, 0, 2}, 100, 200, 7);
  FlowRule* rule = table.lookup(p, 0, p.wire_bytes());
  ASSERT_NE(rule, nullptr);
  EXPECT_EQ(rule->cookie, 2u);
  EXPECT_EQ(table.stats().scan_fallbacks, 1u);
  EXPECT_EQ(table.stats().index_hits, 0u);
  EXPECT_EQ(rule, table.reference_lookup(p, 0));
}

TEST(FlowTable, IndexSurvivesCookieRemoval) {
  FlowTable table;
  for (int i = 0; i < 4; ++i) {
    FlowRule rule;
    rule.priority = 100;
    rule.match = exact_match({10, 0, 0, 1}, {10, 0, 0, 2}, 100,
                             static_cast<net::L4Port>(200 + i), 7);
    rule.cookie = i % 2 == 0 ? 5 : 6;
    ASSERT_TRUE(table.add_rule(rule));
  }
  EXPECT_EQ(table.indexed_rule_count(), 4u);
  EXPECT_EQ(table.remove_by_cookie(5), 2u);
  EXPECT_EQ(table.indexed_rule_count(), 2u);

  auto p = make_packet({10, 0, 0, 1}, {10, 0, 0, 2}, 100, 201, 7);
  FlowRule* rule = table.lookup(p, 0, p.wire_bytes());
  ASSERT_NE(rule, nullptr);
  EXPECT_EQ(rule->cookie, 6u);
  EXPECT_EQ(rule, table.reference_lookup(p, 0));
}

TEST(Match, ExactnessClassification) {
  Match m = exact_match({1, 1, 1, 1}, {2, 2, 2, 2}, 1, 2, 7);
  EXPECT_TRUE(m.is_exact());
  m.mpls.reset();
  EXPECT_FALSE(m.is_exact());  // label state unconstrained
  m.require_no_mpls = true;
  EXPECT_TRUE(m.is_exact());   // pinned to "untagged"
  m.mpls = 9;
  EXPECT_FALSE(m.is_exact());  // contradictory: matches nothing, scans
  m = exact_match({1, 1, 1, 1}, {2, 2, 2, 2}, 1, 2, 7);
  m.in_port.reset();
  EXPECT_FALSE(m.is_exact());
}

// --- the switch device in a 3-node line: host-A -- switch -- host-B ----------

class CaptureDevice : public net::Device {
 public:
  void receive(const net::Packet& packet, topo::PortId) override {
    received.push_back(packet);
  }
  std::vector<net::Packet> received;
};

struct SwitchFixture {
  SwitchFixture() : network(simulator, build_graph()) {
    auto sdn = std::make_unique<SdnSwitch>();
    sw_dev = sdn.get();
    network.set_device(sw, std::move(sdn));
    auto cap_a = std::make_unique<CaptureDevice>();
    auto cap_b = std::make_unique<CaptureDevice>();
    auto cap_c = std::make_unique<CaptureDevice>();
    a_dev = cap_a.get();
    b_dev = cap_b.get();
    c_dev = cap_c.get();
    network.set_device(a, std::move(cap_a));
    network.set_device(b, std::move(cap_b));
    network.set_device(c, std::move(cap_c));
  }

  const topo::Graph& build_graph() {
    sw = graph.add_node(topo::NodeKind::kSwitch);
    a = graph.add_node(topo::NodeKind::kHost);
    b = graph.add_node(topo::NodeKind::kHost);
    c = graph.add_node(topo::NodeKind::kHost);
    graph.add_link(sw, a);  // switch port 0
    graph.add_link(sw, b);  // switch port 1
    graph.add_link(sw, c);  // switch port 2
    return graph;
  }

  sim::Simulator simulator;
  topo::Graph graph;
  topo::NodeId sw{}, a{}, b{}, c{};
  net::Network network;
  SdnSwitch* sw_dev{};
  CaptureDevice* a_dev{};
  CaptureDevice* b_dev{};
  CaptureDevice* c_dev{};
};

TEST(SdnSwitch, RewriteAndForward) {
  SwitchFixture fix;
  FlowRule rule;
  rule.priority = 10;
  rule.match.src = net::Ipv4(10, 0, 0, 1);
  rule.actions = {SetSrc{net::Ipv4(10, 9, 9, 9)},
                  SetDst{net::Ipv4(10, 8, 8, 8)}, SetSport{1111},
                  SetDport{2222}, SetMpls{0xabcd}, Output{1}};
  ASSERT_TRUE(fix.sw_dev->table().add_rule(rule));

  fix.network.transmit(fix.a, 0, make_packet({10, 0, 0, 1}, {10, 0, 0, 2}));
  fix.simulator.run_until();
  ASSERT_EQ(fix.b_dev->received.size(), 1u);
  const auto& out = fix.b_dev->received[0];
  EXPECT_EQ(out.src, net::Ipv4(10, 9, 9, 9));
  EXPECT_EQ(out.dst, net::Ipv4(10, 8, 8, 8));
  EXPECT_EQ(out.sport, 1111);
  EXPECT_EQ(out.dport, 2222);
  EXPECT_EQ(out.mpls, 0xabcdu);
  EXPECT_EQ(fix.sw_dev->forwarded(), 1u);
}

TEST(SdnSwitch, PayloadSurvivesRewriting) {
  // The MN changes headers but never the payload -- the property the
  // paper's content-correlation adversary relies on.
  SwitchFixture fix;
  FlowRule rule;
  rule.priority = 10;
  rule.actions = {SetSrc{net::Ipv4(9, 9, 9, 9)}, Output{1}};
  ASSERT_TRUE(fix.sw_dev->table().add_rule(rule));

  auto p = make_packet({10, 0, 0, 1}, {10, 0, 0, 2});
  p.content_tag = 0x1234567890abcdefULL;
  fix.network.transmit(fix.a, 0, p);
  fix.simulator.run_until();
  ASSERT_EQ(fix.b_dev->received.size(), 1u);
  EXPECT_EQ(fix.b_dev->received[0].content_tag, 0x1234567890abcdefULL);
}

TEST(SdnSwitch, PopMplsClearsLabel) {
  SwitchFixture fix;
  FlowRule rule;
  rule.priority = 10;
  rule.actions = {PopMpls{}, Output{1}};
  ASSERT_TRUE(fix.sw_dev->table().add_rule(rule));
  fix.network.transmit(fix.a, 0,
                       make_packet({1, 1, 1, 1}, {2, 2, 2, 2}, 1, 2, 55));
  fix.simulator.run_until();
  ASSERT_EQ(fix.b_dev->received.size(), 1u);
  EXPECT_EQ(fix.b_dev->received[0].mpls, net::kNoMpls);
}

TEST(SdnSwitch, AllGroupReplicatesWithDistinctHeaders) {
  // The partially-multicast mechanism: one ingress packet, two egress
  // copies with different m-addresses out different ports.
  SwitchFixture fix;
  GroupEntry group;
  group.group_id = 5;
  group.buckets = {
      {SetDst{net::Ipv4(10, 0, 0, 2)}, Output{1}},
      {SetDst{net::Ipv4(10, 0, 0, 3)}, Output{2}},
  };
  ASSERT_TRUE(fix.sw_dev->table().add_group(group));
  FlowRule rule;
  rule.priority = 10;
  rule.actions = {GroupAction{5}};
  ASSERT_TRUE(fix.sw_dev->table().add_rule(rule));

  auto p = make_packet({10, 0, 0, 1}, {10, 0, 0, 9});
  p.content_tag = 42;
  fix.network.transmit(fix.a, 0, p);
  fix.simulator.run_until();
  ASSERT_EQ(fix.b_dev->received.size(), 1u);
  ASSERT_EQ(fix.c_dev->received.size(), 1u);
  EXPECT_EQ(fix.b_dev->received[0].dst, net::Ipv4(10, 0, 0, 2));
  EXPECT_EQ(fix.c_dev->received[0].dst, net::Ipv4(10, 0, 0, 3));
  // Same payload fingerprint on both copies.
  EXPECT_EQ(fix.b_dev->received[0].content_tag, 42u);
  EXPECT_EQ(fix.c_dev->received[0].content_tag, 42u);
}

TEST(SdnSwitch, SelectGroupPicksOneStableBucket) {
  // ECMP semantics: each flow consistently exits one port; across many
  // flows both ports carry traffic.
  SwitchFixture fix;
  GroupEntry group;
  group.group_id = 9;
  group.type = GroupType::kSelect;
  group.buckets = {{Output{1}}, {Output{2}}};
  ASSERT_TRUE(fix.sw_dev->table().add_group(group));
  FlowRule rule;
  rule.priority = 10;
  rule.actions = {GroupAction{9}};
  ASSERT_TRUE(fix.sw_dev->table().add_rule(rule));

  // 16 flows, 3 packets each.
  for (int flow = 0; flow < 16; ++flow) {
    for (int p = 0; p < 3; ++p) {
      fix.network.transmit(
          fix.a, 0,
          make_packet({10, 0, 0, 1}, {10, 0, 0, 9},
                      static_cast<net::L4Port>(30000 + flow), 80));
    }
  }
  fix.simulator.run_until();
  EXPECT_EQ(fix.b_dev->received.size() + fix.c_dev->received.size(), 48u);
  EXPECT_GT(fix.b_dev->received.size(), 0u);
  EXPECT_GT(fix.c_dev->received.size(), 0u);
  // Per-flow stability: all three packets of one flow took one port.
  for (int flow = 0; flow < 16; ++flow) {
    const net::L4Port sport = static_cast<net::L4Port>(30000 + flow);
    int via_b = 0, via_c = 0;
    for (const auto& p : fix.b_dev->received) via_b += p.sport == sport;
    for (const auto& p : fix.c_dev->received) via_c += p.sport == sport;
    EXPECT_TRUE((via_b == 3 && via_c == 0) || (via_b == 0 && via_c == 3))
        << "flow " << flow << " split across ports";
  }
}

TEST(SdnSwitch, DropActionDiscards) {
  SwitchFixture fix;
  FlowRule rule;
  rule.priority = 10;
  rule.actions = {DropAction{}};
  ASSERT_TRUE(fix.sw_dev->table().add_rule(rule));
  fix.network.transmit(fix.a, 0, make_packet({1, 1, 1, 1}, {2, 2, 2, 2}));
  fix.simulator.run_until();
  EXPECT_EQ(fix.b_dev->received.size(), 0u);
  EXPECT_EQ(fix.sw_dev->dropped(), 1u);
}

TEST(SdnSwitch, MissInvokesPacketIn) {
  SwitchFixture fix;
  int packet_ins = 0;
  fix.sw_dev->set_packet_in_handler(
      [&](topo::NodeId sw, const net::Packet&, topo::PortId in_port) {
        EXPECT_EQ(sw, fix.sw);
        EXPECT_EQ(in_port, 0);
        ++packet_ins;
      });
  fix.network.transmit(fix.a, 0, make_packet({1, 1, 1, 1}, {2, 2, 2, 2}));
  fix.simulator.run_until();
  EXPECT_EQ(packet_ins, 1);
}

TEST(SdnSwitch, MissWithoutHandlerDrops) {
  SwitchFixture fix;
  fix.network.transmit(fix.a, 0, make_packet({1, 1, 1, 1}, {2, 2, 2, 2}));
  fix.simulator.run_until();
  EXPECT_EQ(fix.sw_dev->dropped(), 1u);
  EXPECT_EQ(fix.sw_dev->table().miss_count(), 1u);
}

TEST(SdnSwitch, TableStatsSurfaced) {
  SwitchFixture fix;
  FlowRule rule;
  rule.priority = 10;
  rule.match = exact_match({10, 0, 0, 1}, {10, 0, 0, 2}, 100, 200,
                           net::kNoMpls);
  rule.actions = {Output{1}};
  ASSERT_TRUE(fix.sw_dev->table().add_rule(rule));

  fix.network.transmit(fix.a, 0, make_packet({10, 0, 0, 1}, {10, 0, 0, 2}));
  fix.network.transmit(fix.a, 0, make_packet({9, 9, 9, 9}, {8, 8, 8, 8}));
  fix.simulator.run_until();
  const TableStats& stats = fix.sw_dev->table_stats();
  EXPECT_EQ(stats.lookups, 2u);
  EXPECT_EQ(stats.index_hits, 1u);
  EXPECT_EQ(stats.scan_fallbacks, 0u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.lookups,
            stats.index_hits + stats.scan_fallbacks + stats.misses);
}

TEST(SdnSwitch, LookupChargesCpu) {
  SwitchFixture fix;
  FlowRule rule;
  rule.priority = 1;
  rule.actions = {Output{1}};
  ASSERT_TRUE(fix.sw_dev->table().add_rule(rule));
  fix.network.transmit(fix.a, 0, make_packet({1, 1, 1, 1}, {2, 2, 2, 2}));
  fix.simulator.run_until();
  EXPECT_GT(fix.sw_dev->cpu().busy_time(), 0u);
}

}  // namespace
}  // namespace mic::switchd
