// Tests for the topology substrate: fat-tree / BCube builders and the
// all-pairs equal-cost path computation.
#include <gtest/gtest.h>

#include <set>

#include "topology/bcube.hpp"
#include "topology/fattree.hpp"
#include "topology/paths.hpp"

namespace mic::topo {
namespace {

TEST(FatTree, PaperTopologyCounts) {
  // Figure 5: "16 hosts interconnected using a Fat-tree of twenty 4-port
  // switches".
  const FatTree ft(4);
  EXPECT_EQ(ft.host_count(), 16u);
  EXPECT_EQ(ft.core_switches().size(), 4u);
  EXPECT_EQ(ft.agg_switches().size(), 8u);
  EXPECT_EQ(ft.edge_switches().size(), 8u);
  EXPECT_EQ(ft.graph().switches().size(), 20u);
  // Every switch has exactly k ports.
  for (const NodeId sw : ft.graph().switches()) {
    EXPECT_EQ(ft.graph().port_count(sw), 4u);
  }
  // Every host has exactly one port.
  for (const NodeId h : ft.hosts()) {
    EXPECT_EQ(ft.graph().port_count(h), 1u);
  }
}

TEST(FatTree, K6Counts) {
  const FatTree ft(6);
  EXPECT_EQ(ft.host_count(), 54u);  // k^3/4 = 54
  EXPECT_EQ(ft.core_switches().size(), 9u);
  EXPECT_EQ(ft.graph().switches().size(), 45u);  // 9 core + 36 pod
}

TEST(FatTree, HostIpsUniqueAndReversible) {
  const FatTree ft(4);
  std::set<std::uint32_t> ips;
  for (const NodeId h : ft.hosts()) {
    const auto ip = ft.host_ip(h);
    EXPECT_TRUE(ips.insert(ip).second);
    EXPECT_EQ(ft.host_by_ip(ip), h);
  }
  EXPECT_EQ(ft.host_by_ip(0x7f000001), kInvalidNode);
}

TEST(FatTree, PodAssignment) {
  const FatTree ft(4);
  for (const NodeId core : ft.core_switches()) EXPECT_EQ(ft.pod_of(core), -1);
  for (const NodeId h : ft.hosts()) {
    const int pod = ft.pod_of(h);
    EXPECT_GE(pod, 0);
    EXPECT_LT(pod, 4);
  }
}

TEST(FatTree, EdgeSwitchDetection) {
  const FatTree ft(4);
  for (const NodeId e : ft.edge_switches()) EXPECT_TRUE(ft.is_edge_switch(e));
  for (const NodeId a : ft.agg_switches()) EXPECT_FALSE(ft.is_edge_switch(a));
  for (const NodeId c : ft.core_switches()) EXPECT_FALSE(ft.is_edge_switch(c));
}

TEST(Paths, FatTreeDistances) {
  const FatTree ft(4);
  const AllPairsPaths paths(ft.graph());
  const auto& hosts = ft.hosts();

  // Same edge switch: host-edge-host = 2 links, 1 switch.
  EXPECT_EQ(paths.distance(hosts[0], hosts[1]), 2u);
  EXPECT_EQ(paths.switch_hops(hosts[0], hosts[1]), 1u);
  // Same pod, different edge: host-edge-agg-edge-host = 4 links, 3 switches.
  EXPECT_EQ(paths.distance(hosts[0], hosts[2]), 4u);
  EXPECT_EQ(paths.switch_hops(hosts[0], hosts[2]), 3u);
  // Different pods: 6 links, 5 switches.
  EXPECT_EQ(paths.distance(hosts[0], hosts[4]), 6u);
  EXPECT_EQ(paths.switch_hops(hosts[0], hosts[4]), 5u);
}

TEST(Paths, SampledPathsAreValidShortest) {
  const FatTree ft(4);
  const AllPairsPaths paths(ft.graph());
  Rng rng(3);
  const auto& hosts = ft.hosts();
  for (int trial = 0; trial < 50; ++trial) {
    const NodeId a = hosts[rng.below(hosts.size())];
    NodeId b = a;
    while (b == a) b = hosts[rng.below(hosts.size())];
    const Path p = paths.sample_shortest_path(a, b, rng);
    ASSERT_GE(p.size(), 2u);
    EXPECT_EQ(p.front(), a);
    EXPECT_EQ(p.back(), b);
    EXPECT_EQ(p.size(), paths.distance(a, b) + 1);
    // Consecutive nodes adjacent; interior nodes are switches.
    for (std::size_t i = 0; i + 1 < p.size(); ++i) {
      EXPECT_NE(ft.graph().port_towards(p[i], p[i + 1]), kInvalidPort);
      if (i > 0) {
        EXPECT_TRUE(ft.graph().is_switch(p[i]));
      }
    }
  }
}

TEST(Paths, EcmpEnumerationInterPod) {
  const FatTree ft(4);
  const AllPairsPaths paths(ft.graph());
  // Between pods in a k=4 fat-tree there are 4 equal-cost paths
  // (2 aggregation choices x 2 core choices).
  const auto all =
      paths.enumerate_shortest_paths(ft.hosts()[0], ft.hosts()[4], 100);
  EXPECT_EQ(all.size(), 4u);
  std::set<Path> unique(all.begin(), all.end());
  EXPECT_EQ(unique.size(), all.size());
}

TEST(Paths, EnumerationHonorsLimit) {
  const FatTree ft(4);
  const AllPairsPaths paths(ft.graph());
  const auto limited =
      paths.enumerate_shortest_paths(ft.hosts()[0], ft.hosts()[4], 2);
  EXPECT_EQ(limited.size(), 2u);
}

TEST(Paths, LongPathMeetsMinimumSwitches) {
  const FatTree ft(4);
  const AllPairsPaths paths(ft.graph());
  Rng rng(5);
  // Hosts on the same edge switch are 1 switch apart; ask for 4 MNs.
  const auto path =
      paths.sample_long_path(ft.hosts()[0], ft.hosts()[1], 4, rng);
  ASSERT_TRUE(path.has_value());
  EXPECT_GE(path->size(), 6u);  // >= 4 switches + 2 hosts
  // Hosts only at the ends (a revisited *switch* is fine -- MIC rules match
  // on in_port -- but no directed edge may repeat).
  for (std::size_t i = 1; i + 1 < path->size(); ++i) {
    EXPECT_TRUE(ft.graph().is_switch((*path)[i]));
  }
  std::set<std::pair<NodeId, NodeId>> edges;
  for (std::size_t i = 0; i + 1 < path->size(); ++i) {
    EXPECT_TRUE(edges.insert({(*path)[i], (*path)[i + 1]}).second)
        << "repeated directed edge at hop " << i;
  }
}

TEST(Paths, LongPathFallsBackToShortestWhenLongEnough) {
  const FatTree ft(4);
  const AllPairsPaths paths(ft.graph());
  Rng rng(7);
  const auto path =
      paths.sample_long_path(ft.hosts()[0], ft.hosts()[4], 3, rng);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 7u);  // the shortest inter-pod path suffices
}

TEST(Paths, HostsDoNotTransit) {
  // Two hosts on one edge switch; path between two *other* hosts must not
  // run through them.
  const FatTree ft(4);
  const AllPairsPaths paths(ft.graph());
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    const Path p = paths.sample_shortest_path(ft.hosts()[2], ft.hosts()[9], rng);
    for (std::size_t i = 1; i + 1 < p.size(); ++i) {
      EXPECT_TRUE(ft.graph().is_switch(p[i]));
    }
  }
}

TEST(BCube, StructureCounts) {
  // BCube(4, 1): 16 servers, 2 levels x 4 switches.
  const BCube bc(4, 1);
  EXPECT_EQ(bc.servers().size(), 16u);
  EXPECT_EQ(bc.level_switches(0).size(), 4u);
  EXPECT_EQ(bc.level_switches(1).size(), 4u);
  // Every server has l+1 = 2 ports; every switch has n = 4 ports.
  for (const NodeId s : bc.servers()) {
    EXPECT_EQ(bc.graph().port_count(s), 2u);
  }
  for (int level = 0; level <= 1; ++level) {
    for (const NodeId sw : bc.level_switches(level)) {
      EXPECT_EQ(bc.graph().port_count(sw), 4u);
    }
  }
}

TEST(BCube, ServerCentricReachability) {
  // BCube is server-centric: two servers are switch-reachable only when
  // they share a switch (differ in exactly one base-n digit); otherwise a
  // *server* must relay -- which is exactly why the paper's threat model
  // warns that a compromised BCube server sees transit traffic.
  const BCube bc(4, 1);
  const AllPairsPaths paths(bc.graph());
  // Servers 0 and 1 share the level-0 switch: distance 2.
  EXPECT_EQ(paths.distance(bc.servers()[0], bc.servers()[1]), 2u);
  // Servers 0 and 4 share a level-1 switch: distance 2.
  EXPECT_EQ(paths.distance(bc.servers()[0], bc.servers()[4]), 2u);
  // Servers 0 (digits 00) and 5 (digits 11) share no switch: without
  // server relaying there is no path.
  EXPECT_FALSE(paths.reachable(bc.servers()[0], bc.servers()[5]));
}

TEST(Graph, PortNumberingConsistent) {
  Graph g;
  const NodeId a = g.add_node(NodeKind::kSwitch);
  const NodeId b = g.add_node(NodeKind::kSwitch);
  const NodeId c = g.add_node(NodeKind::kHost);
  g.add_link(a, b);
  g.add_link(a, c);
  EXPECT_EQ(g.port_towards(a, b), 0);
  EXPECT_EQ(g.port_towards(a, c), 1);
  EXPECT_EQ(g.port_towards(b, a), 0);
  EXPECT_EQ(g.port_towards(b, c), kInvalidPort);
  EXPECT_EQ(g.out_port(a, 1).peer, c);
  EXPECT_EQ(g.out_port(a, 1).peer_port, 0);
}

}  // namespace
}  // namespace mic::topo
