// Tests of the Tor overlay baseline: circuit construction, onion layering,
// exit proxying, data transfer.
#include <gtest/gtest.h>

#include "core/fabric.hpp"
#include "tor/client.hpp"
#include "tor/relay.hpp"
#include "transport/apps.hpp"

namespace mic::tor {
namespace {

using core::Fabric;
using core::FabricOptions;

std::vector<std::uint8_t> bytes_of(std::string_view s) {
  return {s.begin(), s.end()};
}

struct TorBed {
  explicit TorBed(int relay_count = 3) {
    // Relays on hosts 8..8+n, client on host 0, server on host 15.
    for (int i = 0; i < relay_count; ++i) {
      const std::size_t host_index = 8 + static_cast<std::size_t>(i);
      relays.push_back(std::make_unique<TorRelay>(fabric.host(host_index),
                                                  9001, fabric.rng()));
      path.push_back({fabric.ip(host_index), 9001});
    }
  }

  Fabric fabric;
  std::vector<std::unique_ptr<TorRelay>> relays;
  std::vector<RelayAddr> path;
};

TEST(Tor, CircuitBuildsThroughAllRelays) {
  TorBed bed(3);
  bed.fabric.host(15).listen(5000, [](transport::TcpConnection&) {});
  TorClient client(bed.fabric.host(0), bed.path, bed.fabric.ip(15), 5000,
                   bed.fabric.rng());
  bed.fabric.simulator().run_until();
  EXPECT_TRUE(client.ready());
  EXPECT_EQ(client.built_hops(), 3);
  EXPECT_GT(client.setup_time(), 0u);
}

TEST(Tor, SetupTimeGrowsWithPathLength) {
  sim::SimTime previous = 0;
  for (int hops = 1; hops <= 4; ++hops) {
    TorBed bed(hops);
    bed.fabric.host(15).listen(5000, [](transport::TcpConnection&) {});
    TorClient client(bed.fabric.host(0), bed.path, bed.fabric.ip(15), 5000,
                     bed.fabric.rng());
    bed.fabric.simulator().run_until();
    ASSERT_TRUE(client.ready());
    EXPECT_GT(client.setup_time(), previous);
    previous = client.setup_time();
  }
}

TEST(Tor, RealDataRoundTrips) {
  TorBed bed(3);
  std::string at_server;
  std::string at_client;
  bed.fabric.host(15).listen(5000, [&](transport::TcpConnection& conn) {
    conn.set_on_data([&](const transport::ChunkView& view) {
      at_server.append(view.bytes.begin(), view.bytes.end());
      if (at_server == "GET /secret") {
        conn.send(transport::Chunk::real(bytes_of("200 OK")));
      }
    });
  });
  TorClient client(bed.fabric.host(0), bed.path, bed.fabric.ip(15), 5000,
                   bed.fabric.rng());
  client.set_on_data([&](const transport::ChunkView& view) {
    at_client.append(view.bytes.begin(), view.bytes.end());
  });
  client.send(transport::Chunk::real(bytes_of("GET /secret")));
  bed.fabric.simulator().run_until();
  EXPECT_EQ(at_server, "GET /secret");
  EXPECT_EQ(at_client, "200 OK");
}

TEST(Tor, ClientAddressHiddenFromServer) {
  TorBed bed(3);
  net::Ipv4 peer_seen;
  bed.fabric.host(15).listen(5000, [&](transport::TcpConnection& conn) {
    peer_seen = conn.remote_ip();
  });
  TorClient client(bed.fabric.host(0), bed.path, bed.fabric.ip(15), 5000,
                   bed.fabric.rng());
  client.send(transport::Chunk::real(bytes_of("x")));
  bed.fabric.simulator().run_until();
  // The server's peer is the exit relay, never the client.
  EXPECT_EQ(peer_seen, bed.path.back().ip);
  EXPECT_NE(peer_seen, bed.fabric.ip(0));
}

TEST(Tor, BulkVirtualTransferCompletes) {
  TorBed bed(3);
  constexpr std::uint64_t kBytes = 512 * 1024;
  std::uint64_t received = 0;
  bed.fabric.host(15).listen(5000, [&](transport::TcpConnection& conn) {
    conn.set_on_data(
        [&](const transport::ChunkView& view) { received += view.length; });
  });
  TorClient client(bed.fabric.host(0), bed.path, bed.fabric.ip(15), 5000,
                   bed.fabric.rng());
  client.send(transport::Chunk::virtual_bytes(kBytes));
  bed.fabric.simulator().run_until();
  EXPECT_EQ(received, kBytes);
  for (const auto& relay : bed.relays) {
    EXPECT_GT(relay->cells_relayed(), 0u);
  }
}

TEST(Tor, BackwardBulkDataReachesClient) {
  TorBed bed(2);
  constexpr std::uint64_t kBytes = 128 * 1024;
  std::uint64_t at_client = 0;
  bed.fabric.host(15).listen(5000, [&](transport::TcpConnection& conn) {
    conn.set_on_ready([&conn] {});
    conn.set_on_data([&conn](const transport::ChunkView&) {
      conn.send(transport::Chunk::virtual_bytes(kBytes));
    });
  });
  TorClient client(bed.fabric.host(0), bed.path, bed.fabric.ip(15), 5000,
                   bed.fabric.rng());
  client.set_on_data(
      [&](const transport::ChunkView& view) { at_client += view.length; });
  client.send(transport::Chunk::real(bytes_of("pull")));
  bed.fabric.simulator().run_until();
  EXPECT_EQ(at_client, kBytes);
}

TEST(Tor, RelaysBurnCpuOnCells) {
  TorBed bed(3);
  bed.fabric.host(15).listen(5000, [&](transport::TcpConnection&) {});
  TorClient client(bed.fabric.host(0), bed.path, bed.fabric.ip(15), 5000,
                   bed.fabric.rng());
  client.send(transport::Chunk::virtual_bytes(256 * 1024));
  bed.fabric.simulator().run_until();
  // Every relay host paid crypto + cell handling.
  for (int i = 0; i < 3; ++i) {
    EXPECT_GT(bed.fabric.host(8 + static_cast<std::size_t>(i))
                  .cpu()
                  .busy_time(),
              sim::microseconds(100));
  }
}

TEST(Tor, PingPongOverCircuit) {
  TorBed bed(3);
  std::unique_ptr<transport::PingPongServer> server;
  bed.fabric.host(15).listen(5000, [&](transport::TcpConnection& conn) {
    server = std::make_unique<transport::PingPongServer>(conn);
  });
  TorClient client(bed.fabric.host(0), bed.path, bed.fabric.ip(15), 5000,
                   bed.fabric.rng());
  transport::PingPongClient ping(client, bed.fabric.simulator(), 5);
  bed.fabric.simulator().run_until();
  ASSERT_EQ(ping.rtts().size(), 5u);
  EXPECT_GT(ping.mean_rtt_us(), 100.0);
}

TEST(Tor, ConcurrentCircuitsShareRelays) {
  // Several clients push through the same small relay set -- the overlay
  // bottleneck that drives Figure 9(b)'s Tor collapse.
  TorBed bed(2);
  constexpr std::uint64_t kBytes = 256 * 1024;
  std::uint64_t received[3] = {0, 0, 0};
  std::vector<std::unique_ptr<TorClient>> clients;
  for (int i = 0; i < 3; ++i) {
    const net::L4Port port = static_cast<net::L4Port>(5100 + i);
    bed.fabric.host(15).listen(port, [&received, i](
                                         transport::TcpConnection& conn) {
      conn.set_on_data([&received, i](const transport::ChunkView& view) {
        received[i] += view.length;
      });
    });
    clients.push_back(std::make_unique<TorClient>(
        bed.fabric.host(static_cast<std::size_t>(i)), bed.path,
        bed.fabric.ip(15), port, bed.fabric.rng()));
    clients.back()->send(transport::Chunk::virtual_bytes(kBytes));
  }
  bed.fabric.simulator().run_until();
  for (int i = 0; i < 3; ++i) EXPECT_EQ(received[i], kBytes) << "client " << i;
  // Every relay carried all three circuits' cells.
  for (const auto& relay : bed.relays) {
    EXPECT_GT(relay->cells_relayed(), 3 * kBytes / kCellSize);
  }
}

TEST(Tor, SingleHopCircuitWorks) {
  TorBed bed(1);
  std::string at_server;
  bed.fabric.host(15).listen(5000, [&](transport::TcpConnection& conn) {
    conn.set_on_data([&](const transport::ChunkView& view) {
      at_server.append(view.bytes.begin(), view.bytes.end());
    });
  });
  TorClient client(bed.fabric.host(0), bed.path, bed.fabric.ip(15), 5000,
                   bed.fabric.rng());
  client.send(transport::Chunk::real(bytes_of("one-hop")));
  bed.fabric.simulator().run_until();
  EXPECT_EQ(at_server, "one-hop");
}

TEST(TorCells, HeaderRoundTrip) {
  CellHeader header{0x12345678, CellCmd::kRelay, 444};
  const auto bytes = serialize_cell_header(header);
  const CellHeader parsed = parse_cell_header(bytes);
  EXPECT_EQ(parsed.circuit, header.circuit);
  EXPECT_EQ(parsed.cmd, header.cmd);
  EXPECT_EQ(parsed.length, header.length);
}

TEST(TorCells, RecognizedBodyRoundTrip) {
  const std::vector<std::uint8_t> data{1, 2, 3, 4, 5};
  const auto body = make_recognized_body(RelaySubCmd::kData, data);
  EXPECT_EQ(body.size(), kCellBodyBytes);
  const RecognizedPayload payload = parse_recognized_body(body);
  EXPECT_TRUE(payload.recognized);
  EXPECT_EQ(payload.subcmd, RelaySubCmd::kData);
  EXPECT_EQ(payload.data, data);
}

TEST(TorCells, GarbageIsNotRecognized) {
  std::vector<std::uint8_t> body(kCellBodyBytes, 0xEE);
  EXPECT_FALSE(parse_recognized_body(body).recognized);
}

}  // namespace
}  // namespace mic::tor
