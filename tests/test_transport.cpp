// Tests for the transport substrate: stream buffers, TCP (handshake,
// delivery, loss recovery), and the SSL layer.
#include <gtest/gtest.h>

#include "core/fabric.hpp"
#include "transport/apps.hpp"
#include "transport/ssl.hpp"
#include "transport/stream.hpp"
#include "transport/tcp.hpp"

namespace mic::transport {
namespace {

using core::Fabric;
using core::FabricOptions;

std::vector<std::uint8_t> bytes_of(std::string_view s) {
  return {s.begin(), s.end()};
}

// --- SendBuffer / ByteReader ---------------------------------------------------

TEST(SendBuffer, RealRangeExtraction) {
  SendBuffer buffer;
  buffer.append(Chunk::real(bytes_of("hello world")));
  const Chunk range = buffer.range(6, 5);
  ASSERT_TRUE(range.is_real());
  EXPECT_EQ(std::string(range.data->begin(), range.data->end()), "world");
}

TEST(SendBuffer, VirtualRangeStaysVirtual) {
  SendBuffer buffer;
  buffer.append(Chunk::virtual_bytes(10000));
  const Chunk range = buffer.range(5000, 1000);
  EXPECT_FALSE(range.is_real());
  EXPECT_EQ(range.length, 1000u);
}

TEST(SendBuffer, MixedRangeMaterializes) {
  SendBuffer buffer;
  buffer.append(Chunk::real(bytes_of("abc")));
  buffer.append(Chunk::virtual_bytes(3));
  buffer.append(Chunk::real(bytes_of("xyz")));
  const Chunk range = buffer.range(0, 9);
  ASSERT_TRUE(range.is_real());
  EXPECT_EQ((*range.data)[0], 'a');
  EXPECT_EQ((*range.data)[3], 0);  // virtual filled with zeros
  EXPECT_EQ((*range.data)[8], 'z');
}

TEST(SendBuffer, ReleaseAdvancesBase) {
  SendBuffer buffer;
  buffer.append(Chunk::real(bytes_of("0123456789")));
  buffer.append(Chunk::virtual_bytes(10));
  buffer.release_until(10);
  EXPECT_EQ(buffer.base_offset(), 10u);
  const Chunk range = buffer.range(12, 4);
  EXPECT_EQ(range.length, 4u);
}

TEST(ByteReader, ReadRealAcrossChunks) {
  ByteReader reader;
  const auto a = bytes_of("hel");
  const auto b = bytes_of("lo!");
  reader.append({3, a});
  EXPECT_FALSE(reader.read_real(6).has_value());
  reader.append({3, b});
  const auto got = reader.read_real(6);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(std::string(got->begin(), got->end()), "hello!");
  EXPECT_EQ(reader.available(), 0u);
}

TEST(ByteReader, SkipCountsRealBytes) {
  ByteReader reader;
  const auto a = bytes_of("abcd");
  reader.append({4, a});
  reader.append({10, {}});  // virtual
  EXPECT_EQ(reader.skip(8), 4u);
  EXPECT_EQ(reader.available(), 6u);
}

TEST(ByteReader, TakeUpToRespectsKindBoundary) {
  ByteReader reader;
  const auto a = bytes_of("abc");
  reader.append({3, a});
  reader.append({5, {}});
  const Chunk first = reader.take_up_to(100);
  ASSERT_TRUE(first.is_real());
  EXPECT_EQ(first.length, 3u);
  EXPECT_TRUE(reader.next_is_real() == false);
  const Chunk second = reader.take_up_to(2);
  EXPECT_FALSE(second.is_real());
  EXPECT_EQ(second.length, 2u);
}

// --- TCP over the fat-tree fabric ------------------------------------------------

struct TcpPair {
  explicit TcpPair(FabricOptions options = {}, std::size_t a = 0,
                   std::size_t b = 15)
      : fabric(options), client(&fabric.host(a)), server(&fabric.host(b)) {}

  Fabric fabric;
  Host* client;
  Host* server;
};

TEST(Tcp, HandshakeEstablishesBothEnds) {
  TcpPair pair;
  TcpConnection* accepted = nullptr;
  pair.server->listen(5000, [&](TcpConnection& conn) { accepted = &conn; });
  bool client_ready = false;
  auto& conn = pair.client->connect(pair.fabric.ip(15), 5000);
  conn.set_on_ready([&] { client_ready = true; });
  pair.fabric.simulator().run_until();
  EXPECT_TRUE(client_ready);
  ASSERT_NE(accepted, nullptr);
  EXPECT_EQ(conn.state(), TcpConnection::State::kEstablished);
  EXPECT_EQ(accepted->state(), TcpConnection::State::kEstablished);
  EXPECT_EQ(accepted->remote_ip(), pair.fabric.ip(0));
}

TEST(Tcp, RealBytesArriveIntactAndOrdered) {
  TcpPair pair;
  std::string received;
  pair.server->listen(5000, [&](TcpConnection& conn) {
    conn.set_on_data([&](const ChunkView& view) {
      received.append(view.bytes.begin(), view.bytes.end());
    });
  });
  auto& conn = pair.client->connect(pair.fabric.ip(15), 5000);
  conn.set_on_ready([&] {
    conn.send(Chunk::real(bytes_of("hello ")));
    conn.send(Chunk::real(bytes_of("data center ")));
    conn.send(Chunk::real(bytes_of("world")));
  });
  pair.fabric.simulator().run_until();
  EXPECT_EQ(received, "hello data center world");
}

TEST(Tcp, BulkVirtualTransferCompletes) {
  TcpPair pair;
  constexpr std::uint64_t kBytes = 4 * 1024 * 1024;
  std::uint64_t received = 0;
  pair.server->listen(5000, [&](TcpConnection& conn) {
    conn.set_on_data([&](const ChunkView& view) { received += view.length; });
  });
  auto& conn = pair.client->connect(pair.fabric.ip(15), 5000);
  conn.set_on_ready([&] { conn.send(Chunk::virtual_bytes(kBytes)); });
  pair.fabric.simulator().run_until();
  EXPECT_EQ(received, kBytes);
  EXPECT_EQ(conn.bytes_acked(), kBytes);
}

TEST(Tcp, RecoversFromQueueDrops) {
  FabricOptions options;
  options.link.queue_capacity_bytes = 8000;  // ~5 packets: heavy loss
  TcpPair pair(options);
  constexpr std::uint64_t kBytes = 1024 * 1024;
  std::uint64_t received = 0;
  pair.server->listen(5000, [&](TcpConnection& conn) {
    conn.set_on_data([&](const ChunkView& view) { received += view.length; });
  });
  auto& conn = pair.client->connect(pair.fabric.ip(15), 5000);
  conn.set_on_ready([&] { conn.send(Chunk::virtual_bytes(kBytes)); });
  pair.fabric.simulator().run_until();
  EXPECT_EQ(received, kBytes);
  EXPECT_GT(pair.fabric.network().total_drops(), 0u);
  EXPECT_GT(conn.retransmissions(), 0u);
}

TEST(Tcp, SingleFlowGoodputNearLineRate) {
  TcpPair pair;
  constexpr std::uint64_t kBytes = 8 * 1024 * 1024;
  BulkSink* sink = nullptr;
  std::unique_ptr<BulkSink> sink_storage;
  pair.server->listen(5000, [&](TcpConnection& conn) {
    sink_storage = std::make_unique<BulkSink>(
        conn, pair.fabric.simulator(), kBytes);
    sink = sink_storage.get();
  });
  auto& conn = pair.client->connect(pair.fabric.ip(15), 5000);
  BulkSender sender(conn, kBytes);
  pair.fabric.simulator().run_until();
  ASSERT_NE(sink, nullptr);
  ASSERT_TRUE(sink->finished());
  // Goodput should be within 25% of the 1 Gb/s line rate (headers, ACK
  // pacing and slow start eat some).
  EXPECT_GT(sink->goodput_bps(), 0.75e9);
  EXPECT_LT(sink->goodput_bps(), 1.0e9);
}

TEST(Tcp, ManyConnectionsCoexist) {
  TcpPair pair;
  int established = 0;
  pair.server->listen(5000, [&](TcpConnection& conn) {
    conn.set_on_ready([&] { ++established; });
  });
  std::vector<TcpConnection*> conns;
  for (int i = 0; i < 8; ++i) {
    conns.push_back(&pair.client->connect(pair.fabric.ip(15), 5000));
  }
  pair.fabric.simulator().run_until();
  EXPECT_EQ(established, 8);
  // All use distinct local ports.
  std::set<net::L4Port> ports;
  for (const auto* c : conns) ports.insert(c->local_port());
  EXPECT_EQ(ports.size(), 8u);
}

TEST(Tcp, BidirectionalSimultaneousTransfer) {
  TcpPair pair;
  constexpr std::uint64_t kBytes = 1024 * 1024;
  std::uint64_t at_server = 0;
  std::uint64_t at_client = 0;
  pair.server->listen(5000, [&](TcpConnection& conn) {
    conn.set_on_data(
        [&](const ChunkView& view) { at_server += view.length; });
    conn.set_on_ready([&conn] {});
    conn.send(Chunk::virtual_bytes(kBytes));  // flows once established
  });
  auto& conn = pair.client->connect(pair.fabric.ip(15), 5000);
  conn.set_on_data([&](const ChunkView& view) { at_client += view.length; });
  conn.set_on_ready([&] { conn.send(Chunk::virtual_bytes(kBytes)); });
  pair.fabric.simulator().run_until();
  EXPECT_EQ(at_server, kBytes);
  EXPECT_EQ(at_client, kBytes);
}

TEST(Tcp, SendBeforeEstablishedIsBuffered) {
  TcpPair pair;
  std::string received;
  pair.server->listen(5000, [&](TcpConnection& conn) {
    conn.set_on_data([&](const ChunkView& view) {
      received.append(view.bytes.begin(), view.bytes.end());
    });
  });
  auto& conn = pair.client->connect(pair.fabric.ip(15), 5000);
  conn.send(Chunk::real(bytes_of("eager")));  // before the handshake ends
  pair.fabric.simulator().run_until();
  EXPECT_EQ(received, "eager");
}

TEST(Tcp, CloseHandshake) {
  TcpPair pair;
  bool server_closed = false;
  pair.server->listen(5000, [&](TcpConnection& conn) {
    conn.set_on_closed([&] { server_closed = true; });
  });
  auto& conn = pair.client->connect(pair.fabric.ip(15), 5000);
  conn.set_on_ready([&] { conn.close(); });
  pair.fabric.simulator().run_until();
  EXPECT_TRUE(server_closed);
}

TEST(Tcp, ConnectFromUsesRequestedPort) {
  TcpPair pair;
  pair.server->listen(5000, [](TcpConnection&) {});
  const net::L4Port port = pair.client->reserve_port();
  auto& conn = pair.client->connect_from(port, pair.fabric.ip(15), 5000);
  EXPECT_EQ(conn.local_port(), port);
}

// --- SSL ---------------------------------------------------------------------------

struct SslPair {
  SslPair() : rng(99) {
    pair.server->listen(5000, [&](TcpConnection& conn) {
      server_ssl = std::make_unique<SslSession>(
          conn, SslSession::Role::kServer, *pair.server, rng);
    });
    auto& conn = pair.client->connect(pair.fabric.ip(15), 5000);
    client_ssl = std::make_unique<SslSession>(conn, SslSession::Role::kClient,
                                              *pair.client, rng);
  }

  TcpPair pair;
  Rng rng;
  std::unique_ptr<SslSession> client_ssl;
  std::unique_ptr<SslSession> server_ssl;
};

TEST(Ssl, HandshakeCompletes) {
  SslPair ssl;
  bool client_ready = false;
  ssl.client_ssl->set_on_ready([&] { client_ready = true; });
  ssl.pair.fabric.simulator().run_until();
  EXPECT_TRUE(client_ready);
  EXPECT_TRUE(ssl.client_ssl->ready());
  EXPECT_TRUE(ssl.server_ssl->ready());
}

TEST(Ssl, RealDataRoundTripsThroughEncryption) {
  SslPair ssl;
  std::string received_at_server;
  std::string received_at_client;
  ssl.pair.fabric.simulator().run_until();  // finish handshake
  ssl.server_ssl->set_on_data([&](const ChunkView& view) {
    received_at_server.append(view.bytes.begin(), view.bytes.end());
    ssl.server_ssl->send(Chunk::real(bytes_of("pong")));
  });
  ssl.client_ssl->set_on_data([&](const ChunkView& view) {
    received_at_client.append(view.bytes.begin(), view.bytes.end());
  });
  ssl.client_ssl->send(Chunk::real(bytes_of("ping")));
  ssl.pair.fabric.simulator().run_until();
  EXPECT_EQ(received_at_server, "ping");
  EXPECT_EQ(received_at_client, "pong");
}

TEST(Ssl, WireBytesAreCiphertext) {
  // Tap the client's access link: application plaintext must not appear.
  SslPair ssl;
  std::vector<std::uint8_t> wire;
  // The host's single link is the first link of host node 0.
  const auto& graph = ssl.pair.fabric.network().graph();
  const auto host_node = ssl.pair.fabric.host_node(0);
  ssl.pair.fabric.network().add_link_tap(
      graph.neighbors(host_node)[0].link,
      [&](topo::LinkId, topo::NodeId, topo::NodeId, const net::Packet& packet,
          sim::SimTime) {
        if (packet.payload != nullptr) {
          wire.insert(wire.end(), packet.payload->begin(),
                      packet.payload->end());
        }
      });
  ssl.pair.fabric.simulator().run_until();
  const std::string secret = "TOP-SECRET-PAYLOAD-0123456789";
  ssl.client_ssl->send(Chunk::real(bytes_of(secret)));
  ssl.pair.fabric.simulator().run_until();
  const std::string wire_str(wire.begin(), wire.end());
  EXPECT_EQ(wire_str.find(secret), std::string::npos);
}

TEST(Ssl, VirtualBulkDataCharged) {
  SslPair ssl;
  std::uint64_t received = 0;
  ssl.pair.fabric.simulator().run_until();
  ssl.server_ssl->set_on_data(
      [&](const ChunkView& view) { received += view.length; });
  const auto busy_before = ssl.pair.server->cpu().busy_time();
  ssl.client_ssl->send(Chunk::virtual_bytes(1024 * 1024));
  ssl.pair.fabric.simulator().run_until();
  EXPECT_EQ(received, 1024u * 1024u);
  // Crypto cycles were charged at the receiver.
  EXPECT_GT(ssl.pair.server->cpu().busy_time(), busy_before);
}

TEST(Ssl, QueuedSendsFlushAfterHandshake) {
  SslPair ssl;
  std::string received;
  ssl.server_ssl ? void() : void();  // server created on accept
  ssl.client_ssl->send(Chunk::real(bytes_of("early")));  // before ready
  ssl.pair.fabric.simulator().run_until();
  ssl.server_ssl->set_on_data([&](const ChunkView& view) {
    received.append(view.bytes.begin(), view.bytes.end());
  });
  // The early send was buffered and flushed during/after the handshake; it
  // may already have been delivered before the handler attached, so send
  // another to confirm liveness either way.
  ssl.client_ssl->send(Chunk::real(bytes_of("+late")));
  ssl.pair.fabric.simulator().run_until();
  EXPECT_NE(received.find("+late"), std::string::npos);
}

// --- apps --------------------------------------------------------------------------

TEST(Apps, PingPongMeasuresRtt) {
  TcpPair pair;
  std::unique_ptr<PingPongServer> server;
  pair.server->listen(5000, [&](TcpConnection& conn) {
    server = std::make_unique<PingPongServer>(conn);
  });
  auto& conn = pair.client->connect(pair.fabric.ip(15), 5000);
  PingPongClient client(conn, pair.fabric.simulator(), 20);
  pair.fabric.simulator().run_until();
  ASSERT_EQ(client.rtts().size(), 20u);
  // Inter-pod RTT: 12 links, each ~5 us propagation plus switch CPU.
  EXPECT_GT(client.mean_rtt_us(), 50.0);
  EXPECT_LT(client.mean_rtt_us(), 500.0);
}

}  // namespace
}  // namespace mic::transport
